//! Profiled build driver for the load → CSR/CSC → Vector-Sparse pipeline.
//!
//! [`prepare_profiled`] runs the same three structure-building phases as
//! `Graph::from_edgelist` + `PreparedGraph::new`, but on a [`ThreadPool`]
//! and with an [`Instant`] read around each phase, returning a
//! [`BuildProfile`] alongside the structures. On a one-thread pool every
//! phase takes its sequential path, so the profile doubles as the
//! sequential baseline for the `build-throughput` experiment. Parse time
//! and input bytes are the caller's to stamp — only the caller knows
//! whether the edge list came from a file, a generator, or a wire.

use crate::engine::PreparedGraph;
use crate::stats::BuildProfile;
use grazelle_graph::csr::Csr;
use grazelle_graph::edgelist::EdgeList;
use grazelle_graph::graph::Graph;
use grazelle_graph::types::GraphError;
use grazelle_sched::ThreadPool;
use std::time::Instant;

/// Default edge count below which the whole pipeline takes the sequential
/// path even on a multi-thread pool. Below this size the parallel counting
/// sort's fixed costs (per-worker histogram allocation, the broadcast
/// handshakes) outweigh the work split — measured at ~0.86× versus
/// sequential at 2 threads on small inputs — while well above it the
/// parallel path wins cleanly. 64Ki edges puts the crossover comfortably
/// on the winning side at every pool width we ship.
pub const PAR_BUILD_CUTOVER_EDGES: u64 = 64 * 1024;

/// Builds both CSR orientations and both Vector-Sparse structures from an
/// edge list on `pool`, timing each phase. Bit-identical to the sequential
/// `Graph::from_edgelist` + `PreparedGraph::new` path at any thread count.
///
/// Inputs smaller than [`PAR_BUILD_CUTOVER_EDGES`] take the sequential
/// path regardless of pool width (see
/// [`prepare_profiled_with_cutover`] to override the threshold); the
/// profile's `threads` field reports the width actually used and
/// `par_cutover` the threshold in effect.
///
/// The returned profile has `csr_ns`, `csc_ns`, `vsparse_ns`, `edges`,
/// `threads`, and `par_cutover` filled in; `parse_ns` and `input_bytes`
/// stay zero for the caller to set.
pub fn prepare_profiled(
    el: &EdgeList,
    pool: &ThreadPool,
) -> Result<(Graph, PreparedGraph, BuildProfile), GraphError> {
    prepare_profiled_with_cutover(el, pool, PAR_BUILD_CUTOVER_EDGES)
}

/// [`prepare_profiled`] with an explicit sequential/parallel cutover:
/// inputs with fewer than `cutover_edges` edges build sequentially even on
/// a multi-thread pool (0 disables the cutover, always taking the
/// pool-width path — what the `build-throughput` experiment uses so each
/// arm measures the parallel pipeline itself).
pub fn prepare_profiled_with_cutover(
    el: &EdgeList,
    pool: &ThreadPool,
    cutover_edges: u64,
) -> Result<(Graph, PreparedGraph, BuildProfile), GraphError> {
    if el.num_vertices() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    // The *_parallel builders fall back to the sequential code on a
    // one-thread pool, so both sides of the cutover share one code path;
    // the cutover only decides which width the phases run at.
    let parallel = pool.num_threads() > 1 && el.num_edges() as u64 >= cutover_edges;
    let mut profile = BuildProfile {
        edges: el.num_edges() as u64,
        threads: if parallel { pool.num_threads() } else { 1 },
        par_cutover: cutover_edges,
        ..BuildProfile::default()
    };

    let t = Instant::now();
    let mut out = if parallel {
        Csr::from_edgelist_by_src_parallel(el, pool)
    } else {
        Csr::from_edgelist_by_src(el)
    };
    if parallel {
        out.sort_neighbors_parallel(pool);
    } else {
        out.sort_neighbors();
    }
    profile.csr_ns = t.elapsed().as_nanos() as u64;

    let t = Instant::now();
    let mut inn = if parallel {
        Csr::from_edgelist_by_dst_parallel(el, pool)
    } else {
        Csr::from_edgelist_by_dst(el)
    };
    if parallel {
        inn.sort_neighbors_parallel(pool);
    } else {
        inn.sort_neighbors();
    }
    profile.csc_ns = t.elapsed().as_nanos() as u64;

    let g = Graph::from_orientations(out, inn, "")?;

    let t = Instant::now();
    let pg = if parallel {
        PreparedGraph::new_on_pool(&g, pool)
    } else {
        PreparedGraph::new(&g)
    };
    profile.vsparse_ns = t.elapsed().as_nanos() as u64;

    Ok((g, pg, profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_build_matches_plain_build() {
        let el = EdgeList::from_pairs(
            16,
            &(0..16u32)
                .flat_map(|s| (0..(s % 4)).map(move |k| (s, (s + k + 3) % 16)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let plain_g = Graph::from_edgelist(&el).unwrap();
        let plain_pg = PreparedGraph::new(&plain_g);
        for threads in [1, 2, 4] {
            let pool = ThreadPool::single_group(threads);
            // Cutover disabled: every arm exercises the pool-width path.
            let (g, pg, profile) = prepare_profiled_with_cutover(&el, &pool, 0).unwrap();
            assert_eq!(g.out_csr(), plain_g.out_csr(), "{threads} threads");
            assert_eq!(g.in_csr(), plain_g.in_csr(), "{threads} threads");
            assert!(pg.vsd.bit_identical(&plain_pg.vsd), "{threads} threads");
            assert!(pg.vss.bit_identical(&plain_pg.vss), "{threads} threads");
            assert_eq!(profile.threads, threads);
            assert_eq!(profile.par_cutover, 0);
            assert_eq!(profile.edges, el.num_edges() as u64);
            assert_eq!(profile.parse_ns, 0);
            assert_eq!(profile.input_bytes, 0);
        }
    }

    /// The size-adaptive cutover: a small input on a wide pool builds
    /// sequentially (and says so in the profile), a threshold of 0 forces
    /// the parallel path, and both sides stay bit-identical to the plain
    /// sequential build.
    #[test]
    fn small_inputs_cut_over_to_the_sequential_path() {
        let el = EdgeList::from_pairs(
            32,
            &(0..32u32)
                .flat_map(|s| (0..(s % 5)).map(move |k| (s, (s + k + 1) % 32)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let plain_g = Graph::from_edgelist(&el).unwrap();
        let plain_pg = PreparedGraph::new(&plain_g);
        let pool = ThreadPool::single_group(4);

        // Default threshold: far above this input, so the build is
        // sequential despite the 4-thread pool.
        let (g, pg, profile) = prepare_profiled(&el, &pool).unwrap();
        assert_eq!(
            profile.threads, 1,
            "small input must take the sequential path"
        );
        assert_eq!(profile.par_cutover, PAR_BUILD_CUTOVER_EDGES);
        assert_eq!(g.out_csr(), plain_g.out_csr());
        assert!(pg.vsd.bit_identical(&plain_pg.vsd));

        // Threshold 0: the same input builds at pool width, bit-identical.
        let (g2, pg2, profile2) = prepare_profiled_with_cutover(&el, &pool, 0).unwrap();
        assert_eq!(profile2.threads, 4);
        assert_eq!(g2.out_csr(), plain_g.out_csr());
        assert!(pg2.vsd.bit_identical(&plain_pg.vsd));
        assert!(pg2.vss.bit_identical(&plain_pg.vss));
    }

    #[test]
    fn empty_vertex_set_rejected() {
        let pool = ThreadPool::single_group(2);
        assert!(matches!(
            prepare_profiled(&EdgeList::new(0), &pool),
            Err(GraphError::EmptyGraph)
        ));
    }
}

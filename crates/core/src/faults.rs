//! Deterministic execution-fault injection for the resilience layer.
//!
//! The I/O half of the fault model lives in
//! [`grazelle_graph::faults`](grazelle_graph::faults); this module covers
//! the execution half: worker panics pinned to a specific `(iteration,
//! chunk)`, an injected superstep stall for the watchdog to catch, and a
//! NaN poisoned into an accumulator for the divergence guard to catch.
//! [`FaultPlan`] is the umbrella both halves hang off — a plain seeded
//! value with no wall-clock or ambient randomness, so any failure a test
//! or bench provokes is replayable byte-for-byte.
//!
//! This module deliberately sits *outside* `engine/`: the injector is the
//! one place in the core crate allowed to `panic!` on purpose, and the
//! hot-path lint (`cargo xtask lint`) bans panics under
//! `crates/core/src/engine/`.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::time::Duration;

pub use grazelle_graph::faults::IoFaultPlan;

/// Panic the worker processing `chunk` during `iteration`, for the first
/// `failures` attempts (attempt `failures` succeeds — or never, if
/// `failures` exceeds the retry budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPanicFault {
    /// Engine iteration (0-based) the fault is armed in.
    pub iteration: usize,
    /// Chunk id (global, as numbered by the Edge-Pull scheduler set).
    pub chunk: usize,
    /// How many consecutive attempts at this chunk panic before one
    /// succeeds.
    pub failures: u32,
}

/// Make worker 0 sleep through `iteration`, exceeding the watchdog
/// deadline so the run ends in `EngineError::Stalled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFault {
    /// Engine iteration (0-based) the stall is armed in.
    pub iteration: usize,
    /// How long the stalling worker sleeps. Pick comfortably past the
    /// configured watchdog deadline.
    pub sleep: Duration,
}

/// Overwrite one accumulator with NaN after the Edge phase of `iteration`,
/// so the following Vertex phase propagates it into the vertex properties
/// and the divergence guard must recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanFault {
    /// Engine iteration (0-based) the poison lands in.
    pub iteration: usize,
    /// Vertex whose accumulator is poisoned.
    pub vertex: usize,
}

/// The execution half of a [`FaultPlan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecFaultPlan {
    /// Chunk-pinned worker panics.
    pub chunk_panics: Vec<ChunkPanicFault>,
    /// At most one injected stall.
    pub stall: Option<StallFault>,
    /// At most one injected NaN poison.
    pub poison: Option<NanFault>,
}

impl ExecFaultPlan {
    /// A plan that injects nothing.
    pub fn clean() -> Self {
        ExecFaultPlan::default()
    }

    /// Builder: add a chunk-panic fault.
    pub fn with_chunk_panic(mut self, iteration: usize, chunk: usize, failures: u32) -> Self {
        self.chunk_panics.push(ChunkPanicFault {
            iteration,
            chunk,
            failures,
        });
        self
    }

    /// Builder: arm a stall.
    pub fn with_stall(mut self, iteration: usize, sleep: Duration) -> Self {
        self.stall = Some(StallFault { iteration, sleep });
        self
    }

    /// Builder: arm a NaN poison.
    pub fn with_poison(mut self, iteration: usize, vertex: usize) -> Self {
        self.poison = Some(NanFault { iteration, vertex });
        self
    }
}

/// Stall the serving layer's admission path for `stall` before query
/// `query` (0-based admission sequence number) is enqueued, simulating a
/// slow client or a blocked accept loop. The bounded queue must keep
/// shedding correctly underneath it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStallFault {
    /// Admission sequence number the stall is armed for.
    pub query: usize,
    /// How long admission sleeps before enqueueing that query.
    pub stall: Duration,
}

/// Panic the executor while it processes query `query`, for the first
/// `failures` attempts — the serving layer's retry loop must absorb the
/// panics (attempt `failures` succeeds) or give up with a typed error,
/// never killing the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPanicFault {
    /// Admission sequence number of the doomed query.
    pub query: usize,
    /// Consecutive attempts that panic before one succeeds.
    pub failures: u32,
}

/// Collapse the deadlines of `queries` consecutive queries (starting at
/// admission sequence `from_query`) to zero, so each is cancelled at its
/// first iteration boundary — a deterministic deadline storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineStormFault {
    /// First admission sequence number in the storm.
    pub from_query: usize,
    /// How many consecutive queries the storm covers.
    pub queries: usize,
}

/// The serving-layer half of a [`FaultPlan`]: faults injected around the
/// server loop rather than inside the engine. Like the execution half,
/// everything is pinned to deterministic coordinates (admission sequence
/// numbers), so a soak run replays byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeFaultPlan {
    /// Admission-path stalls.
    pub admission_stalls: Vec<AdmissionStallFault>,
    /// Per-query executor panics.
    pub query_panics: Vec<QueryPanicFault>,
    /// At most one deadline storm.
    pub deadline_storm: Option<DeadlineStormFault>,
}

impl ServeFaultPlan {
    /// A plan that injects nothing.
    pub fn clean() -> Self {
        ServeFaultPlan::default()
    }

    /// Builder: stall admission before `query` for `stall`.
    pub fn with_admission_stall(mut self, query: usize, stall: Duration) -> Self {
        self.admission_stalls
            .push(AdmissionStallFault { query, stall });
        self
    }

    /// Builder: panic the executor on `query` for `failures` attempts.
    pub fn with_query_panic(mut self, query: usize, failures: u32) -> Self {
        self.query_panics.push(QueryPanicFault { query, failures });
        self
    }

    /// Builder: arm a deadline storm over `queries` queries starting at
    /// `from_query`.
    pub fn with_deadline_storm(mut self, from_query: usize, queries: usize) -> Self {
        self.deadline_storm = Some(DeadlineStormFault {
            from_query,
            queries,
        });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_clean(&self) -> bool {
        self.admission_stalls.is_empty()
            && self.query_panics.is_empty()
            && self.deadline_storm.is_none()
    }
}

/// Runtime driver for a [`ServeFaultPlan`]: tracks per-query panic
/// attempts so injected failures fire exactly where the plan says. Shared
/// by reference between the admission path and the executor.
#[derive(Debug)]
pub struct ServeInjector {
    plan: ServeFaultPlan,
    /// Attempt counter per `query_panics` entry, index-aligned.
    attempts: Vec<AtomicU32>,
}

impl ServeInjector {
    /// Arms `plan`.
    pub fn new(plan: ServeFaultPlan) -> Self {
        let attempts = plan
            .query_panics
            .iter()
            .map(|_| AtomicU32::new(0))
            .collect();
        ServeInjector { plan, attempts }
    }

    /// Called by the admission path before enqueueing admission sequence
    /// `seq`; returns how long to stall, if a stall is armed there.
    pub fn admission_stall(&self, seq: usize) -> Option<Duration> {
        self.plan
            .admission_stalls
            .iter()
            .find(|f| f.query == seq)
            .map(|f| f.stall)
    }

    /// Called by the executor as it starts an attempt at admission
    /// sequence `seq`. Panics while the armed fault still has failures
    /// left to deliver.
    pub fn maybe_panic_query(&self, seq: usize) {
        for (fault, attempts) in self.plan.query_panics.iter().zip(&self.attempts) {
            if fault.query == seq {
                // ATOMIC: acqrel-handoff — each attempt index is handed out
                // once, ordered with the panic it provokes
                let prior = attempts.fetch_add(1, Ordering::AcqRel);
                if prior < fault.failures {
                    panic!("injected query panic: query {seq}, attempt {prior}");
                }
            }
        }
    }

    /// Whether the deadline storm covers admission sequence `seq` (the
    /// serving layer then treats the query's deadline as already expired).
    pub fn storm_deadline(&self, seq: usize) -> bool {
        self.plan
            .deadline_storm
            .is_some_and(|s| seq >= s.from_query && seq < s.from_query + s.queries)
    }
}

/// The full deterministic fault plan: a seed (threaded into the I/O
/// adapter's error-kind choice and the serving layer's retry jitter), the
/// ingestion faults, the execution faults, and the serving-layer faults.
/// Everything the harness injects anywhere descends from one of these.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the I/O adapter's deterministic choices.
    pub seed: u64,
    /// Ingestion faults (truncation, bit-flips, transient errors).
    pub io: IoFaultPlan,
    /// Execution faults (chunk panics, stall, NaN poison).
    pub exec: ExecFaultPlan,
    /// Serving-layer faults (admission stalls, query panics, deadline
    /// storms).
    pub serve: ServeFaultPlan,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn clean() -> Self {
        FaultPlan::default()
    }
}

/// Runtime driver for an [`ExecFaultPlan`]: tracks the current iteration
/// and per-fault attempt counts so injected failures fire exactly where
/// the plan says and nowhere else. Shared by reference across workers.
#[derive(Debug)]
pub struct ExecInjector {
    plan: ExecFaultPlan,
    iteration: AtomicUsize,
    /// Attempt counter per `chunk_panics` entry, index-aligned.
    attempts: Vec<AtomicU32>,
    stall_fired: AtomicBool,
    poison_fired: AtomicBool,
}

impl ExecInjector {
    /// Arms `plan`.
    pub fn new(plan: ExecFaultPlan) -> Self {
        let attempts = plan
            .chunk_panics
            .iter()
            .map(|_| AtomicU32::new(0))
            .collect();
        ExecInjector {
            plan,
            iteration: AtomicUsize::new(0),
            attempts,
            stall_fired: AtomicBool::new(false),
            poison_fired: AtomicBool::new(false),
        }
    }

    /// The driver announces each iteration before its Edge phase.
    pub fn set_iteration(&self, iteration: usize) {
        // ATOMIC: barrier-publish — publishes the iteration to worker probes
        self.iteration.store(iteration, Ordering::Release);
    }

    /// Called by the resilient Edge phase as a worker picks up `chunk`.
    /// Panics while the armed fault still has failures left to deliver.
    pub fn maybe_panic_chunk(&self, chunk: usize) {
        // ATOMIC: barrier-publish — acquire side of the iteration edge
        let iteration = self.iteration.load(Ordering::Acquire);
        for (fault, attempts) in self.plan.chunk_panics.iter().zip(&self.attempts) {
            if fault.iteration == iteration && fault.chunk == chunk {
                // ATOMIC: acqrel-handoff — each attempt index is handed out
                // once, ordered with the panic it provokes
                let prior = attempts.fetch_add(1, Ordering::AcqRel);
                if prior < fault.failures {
                    panic!(
                        "injected chunk panic: iteration {iteration}, chunk {chunk}, \
                         attempt {prior}"
                    );
                }
            }
        }
    }

    /// Called by the resilient Edge phase on every worker as it enters the
    /// phase; worker 0 sleeps through an armed stall (once).
    pub fn maybe_stall(&self, worker_id: usize) {
        if worker_id != 0 {
            return;
        }
        if let Some(stall) = self.plan.stall {
            // ATOMIC: acqrel-handoff — one-shot stall latch; iteration read
            // is the acquire side of the barrier-publish edge above
            if stall.iteration == self.iteration.load(Ordering::Acquire)
                && !self.stall_fired.swap(true, Ordering::AcqRel)
            {
                std::thread::sleep(stall.sleep);
            }
        }
    }

    /// Called by the driver between the Edge and Vertex phases; returns the
    /// vertex whose accumulator should be overwritten with NaN, once.
    pub fn poison_target(&self) -> Option<usize> {
        let poison = self.plan.poison?;
        // ATOMIC: acqrel-handoff — one-shot poison latch; iteration read is
        // the acquire side of the barrier-publish edge above
        if poison.iteration == self.iteration.load(Ordering::Acquire)
            && !self.poison_fired.swap(true, Ordering::AcqRel)
        {
            Some(poison.vertex)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_panic_fires_exactly_failures_times() {
        let inj = ExecInjector::new(ExecFaultPlan::clean().with_chunk_panic(1, 3, 2));
        inj.set_iteration(1);
        for attempt in 0..2 {
            let r = std::panic::catch_unwind(|| inj.maybe_panic_chunk(3));
            assert!(r.is_err(), "attempt {attempt} should panic");
        }
        // Third attempt succeeds.
        inj.maybe_panic_chunk(3);
        // Other chunks and other iterations are untouched.
        inj.maybe_panic_chunk(2);
        inj.set_iteration(0);
        inj.maybe_panic_chunk(3);
    }

    #[test]
    fn wrong_iteration_never_fires() {
        let inj = ExecInjector::new(ExecFaultPlan::clean().with_chunk_panic(5, 0, 10));
        inj.set_iteration(4);
        inj.maybe_panic_chunk(0);
    }

    #[test]
    fn poison_fires_once() {
        let inj = ExecInjector::new(ExecFaultPlan::clean().with_poison(2, 7));
        inj.set_iteration(1);
        assert_eq!(inj.poison_target(), None);
        inj.set_iteration(2);
        assert_eq!(inj.poison_target(), Some(7));
        assert_eq!(inj.poison_target(), None, "poison must fire once");
    }

    #[test]
    fn stall_only_hits_worker_zero_once() {
        let inj = ExecInjector::new(ExecFaultPlan::clean().with_stall(0, Duration::from_millis(1)));
        inj.set_iteration(0);
        let t0 = std::time::Instant::now();
        inj.maybe_stall(1); // not worker 0: no sleep
        inj.maybe_stall(0); // sleeps ~1ms
        inj.maybe_stall(0); // already fired: no sleep
        assert!(t0.elapsed() >= Duration::from_millis(1));
        assert!(inj.stall_fired.load(Ordering::Relaxed));
    }

    #[test]
    fn clean_plan_is_inert() {
        let inj = ExecInjector::new(ExecFaultPlan::clean());
        inj.set_iteration(0);
        inj.maybe_panic_chunk(0);
        inj.maybe_stall(0);
        assert_eq!(inj.poison_target(), None);
    }

    #[test]
    fn query_panic_fires_exactly_failures_times() {
        let inj = ServeInjector::new(ServeFaultPlan::clean().with_query_panic(3, 2));
        for attempt in 0..2 {
            let r = std::panic::catch_unwind(|| inj.maybe_panic_query(3));
            assert!(r.is_err(), "attempt {attempt} should panic");
        }
        inj.maybe_panic_query(3); // third attempt succeeds
        inj.maybe_panic_query(2); // other queries untouched
    }

    #[test]
    fn admission_stall_and_storm_are_pinned_to_their_queries() {
        let plan = ServeFaultPlan::clean()
            .with_admission_stall(1, Duration::from_millis(5))
            .with_deadline_storm(4, 3);
        assert!(!plan.is_clean());
        let inj = ServeInjector::new(plan);
        assert_eq!(inj.admission_stall(0), None);
        assert_eq!(inj.admission_stall(1), Some(Duration::from_millis(5)));
        for seq in 0..10 {
            assert_eq!(inj.storm_deadline(seq), (4..7).contains(&seq), "seq {seq}");
        }
    }

    #[test]
    fn clean_serve_plan_is_inert() {
        let plan = ServeFaultPlan::clean();
        assert!(plan.is_clean());
        let inj = ServeInjector::new(plan);
        inj.maybe_panic_query(0);
        assert_eq!(inj.admission_stall(0), None);
        assert!(!inj.storm_deadline(0));
    }
}

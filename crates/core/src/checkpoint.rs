//! Checkpoint/restore of engine state at iteration boundaries.
//!
//! A checkpoint captures everything needed to resume a program exactly
//! where it stopped: the iteration counter, every property array the
//! program names in
//! [`GraphProgram::checkpoint_arrays`](crate::program::GraphProgram::checkpoint_arrays)
//! (as raw `u64` bits, so floats survive bit-exactly — including NaN
//! payloads), and the current frontier. Because the engine is
//! deterministic given fixed chunk geometry (the merge fold is sequential,
//! §3), resuming from an iteration boundary reproduces the uninterrupted
//! run bit-for-bit at the same thread/group count — chunk geometry fixes
//! the float combine order, so a resume under a different geometry still
//! converges but is not guaranteed bit-identical.
//!
//! The on-disk format mirrors the hardened graph format: magic, payload,
//! CRC32C trailer, strict length validation before any allocation. Saves
//! are atomic (write to a temp file, then rename) so a crash mid-write
//! leaves the previous checkpoint intact rather than a torn file.

use crate::frontier::{DenseBitmap, Frontier};
use crate::properties::PropertyArray;
use grazelle_graph::checksum::crc32c;
use grazelle_graph::types::GraphError;
use std::path::Path;
use std::sync::atomic::Ordering;

/// Checkpoint file magic.
pub const CKPT_MAGIC: [u8; 8] = *b"GRZCKPT1";

/// A plain, serializable snapshot of a frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontierSnapshot {
    /// Every vertex active.
    All { len: usize },
    /// Dense bitmap, stored as its words.
    Dense { len: usize, words: Vec<u64> },
    /// Sparse sorted vertex list.
    Sparse { len: usize, vertices: Vec<u32> },
}

impl FrontierSnapshot {
    /// Captures `frontier` into plain data.
    pub fn capture(frontier: &Frontier) -> Self {
        match frontier {
            Frontier::All { len } => FrontierSnapshot::All { len: *len },
            Frontier::Dense(bm) => FrontierSnapshot::Dense {
                len: bm.len(),
                words: bm
                    .words()
                    .iter()
                    // ATOMIC: relaxed-cell — snapshot between phases
                    .map(|w| w.load(Ordering::Relaxed))
                    .collect(),
            },
            Frontier::Sparse { len, vertices } => FrontierSnapshot::Sparse {
                len: *len,
                vertices: vertices.clone(),
            },
        }
    }

    /// Rebuilds the live frontier.
    pub fn restore(&self) -> Frontier {
        match self {
            FrontierSnapshot::All { len } => Frontier::all(*len),
            FrontierSnapshot::Dense { len, words } => {
                let bm = DenseBitmap::new(*len);
                for (cell, &w) in bm.words().iter().zip(words) {
                    // ATOMIC: relaxed-cell — restore is single-threaded
                    cell.store(w, Ordering::Relaxed);
                }
                Frontier::Dense(bm)
            }
            FrontierSnapshot::Sparse { len, vertices } => Frontier::sparse(*len, vertices),
        }
    }
}

/// A complete, serializable engine checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Completed iterations at capture time (the next iteration to run).
    pub iteration: usize,
    /// Raw bits of each checkpointed property array, in
    /// `checkpoint_arrays` order.
    pub arrays: Vec<Vec<u64>>,
    /// Frontier for the next iteration.
    pub frontier: FrontierSnapshot,
}

impl Checkpoint {
    /// Captures `arrays` and `frontier` after `iteration` completed
    /// iterations.
    pub fn capture(iteration: usize, arrays: &[&PropertyArray], frontier: &Frontier) -> Self {
        Checkpoint {
            iteration,
            arrays: arrays.iter().map(|a| a.to_vec_u64()).collect(),
            frontier: FrontierSnapshot::capture(frontier),
        }
    }

    /// Writes the snapshot back into live arrays (positional; lengths must
    /// match exactly).
    pub fn restore_into(&self, arrays: &[&PropertyArray]) -> Result<(), GraphError> {
        if arrays.len() != self.arrays.len() {
            return Err(GraphError::Io(format!(
                "checkpoint carries {} arrays, program declares {}",
                self.arrays.len(),
                arrays.len()
            )));
        }
        for (target, bits) in arrays.iter().zip(&self.arrays) {
            if target.len() != bits.len() {
                return Err(GraphError::Io(format!(
                    "checkpoint array length mismatch: snapshot {}, live {}",
                    bits.len(),
                    target.len()
                )));
            }
        }
        // Validated above; load_u64's own assert cannot fire now.
        for (target, bits) in arrays.iter().zip(&self.arrays) {
            target.load_u64(bits);
        }
        Ok(())
    }

    /// Serializes:
    /// `CKPT_MAGIC | iteration:u64 | n_arrays:u32 | (len:u64 bits*len)* |
    ///  frontier | crc32c:u32`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&CKPT_MAGIC);
        buf.extend_from_slice(&(self.iteration as u64).to_le_bytes());
        buf.extend_from_slice(&(self.arrays.len() as u32).to_le_bytes());
        for a in &self.arrays {
            buf.extend_from_slice(&(a.len() as u64).to_le_bytes());
            for &bits in a {
                buf.extend_from_slice(&bits.to_le_bytes());
            }
        }
        match &self.frontier {
            FrontierSnapshot::All { len } => {
                buf.push(0);
                buf.extend_from_slice(&(*len as u64).to_le_bytes());
            }
            FrontierSnapshot::Dense { len, words } => {
                buf.push(1);
                buf.extend_from_slice(&(*len as u64).to_le_bytes());
                buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
                for &w in words {
                    buf.extend_from_slice(&w.to_le_bytes());
                }
            }
            FrontierSnapshot::Sparse { len, vertices } => {
                buf.push(2);
                buf.extend_from_slice(&(*len as u64).to_le_bytes());
                buf.extend_from_slice(&(vertices.len() as u64).to_le_bytes());
                for &v in vertices {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let crc = crc32c(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserializes and verifies a checkpoint. Every declared length is
    /// validated against the remaining bytes before allocation, and the
    /// CRC32C trailer is verified before anything else is trusted.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, GraphError> {
        if data.len() < CKPT_MAGIC.len() + 4 {
            return Err(GraphError::Io("checkpoint truncated".into()));
        }
        let mut found = [0u8; 8];
        found.copy_from_slice(&data[..8]);
        if found != CKPT_MAGIC {
            return Err(GraphError::BadMagic {
                expected: CKPT_MAGIC,
                found,
            });
        }
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        let computed = crc32c(&data[..data.len() - 4]);
        if stored != computed {
            return Err(GraphError::ChecksumMismatch { stored, computed });
        }
        let mut cur = Cursor {
            body: &data[8..data.len() - 4],
            pos: 0,
        };
        let iteration = cur.read_u64()? as usize;
        let n_arrays = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
        let mut arrays = Vec::new();
        for _ in 0..n_arrays {
            let len = cur.read_u64()? as usize;
            let raw = cur.take(
                len.checked_mul(8)
                    .ok_or_else(|| GraphError::Io("checkpoint array length overflows".into()))?,
            )?;
            arrays.push(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            );
        }
        let tag = cur.take(1)?[0];
        let frontier = match tag {
            0 => FrontierSnapshot::All {
                len: cur.read_u64()? as usize,
            },
            1 => {
                let len = cur.read_u64()? as usize;
                let n_words = cur.read_u64()? as usize;
                if n_words != len.div_ceil(64) {
                    return Err(GraphError::Io(format!(
                        "checkpoint dense frontier: {n_words} words for {len} vertices"
                    )));
                }
                let raw = cur.take(n_words.checked_mul(8).ok_or_else(|| {
                    GraphError::Io("checkpoint frontier length overflows".into())
                })?)?;
                FrontierSnapshot::Dense {
                    len,
                    words: raw
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                }
            }
            2 => {
                let len = cur.read_u64()? as usize;
                let count = cur.read_u64()? as usize;
                let raw = cur.take(count.checked_mul(4).ok_or_else(|| {
                    GraphError::Io("checkpoint frontier length overflows".into())
                })?)?;
                let vertices: Vec<u32> = raw
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                if vertices.iter().any(|&v| v as usize >= len) {
                    return Err(GraphError::Io(
                        "checkpoint sparse frontier has out-of-range vertex".into(),
                    ));
                }
                FrontierSnapshot::Sparse { len, vertices }
            }
            t => {
                return Err(GraphError::Io(format!(
                    "checkpoint has unknown frontier tag {t}"
                )))
            }
        };
        if cur.pos != cur.body.len() {
            return Err(GraphError::Io(format!(
                "checkpoint has {} trailing bytes",
                cur.body.len() - cur.pos
            )));
        }
        Ok(Checkpoint {
            iteration,
            arrays,
            frontier,
        })
    }

    /// Atomically and *durably* writes the checkpoint: encode → temp file
    /// → fsync → rename → fsync parent directory.
    ///
    /// The temp-file fsync makes the bytes stable before the rename
    /// publishes them (otherwise a crash after `save` returns can leave a
    /// zero-length or torn file at `path` on journaling filesystems that
    /// reorder data behind metadata); the directory fsync makes the rename
    /// itself stable, so a checkpoint that `save` reported written cannot
    /// be lost to a crash immediately afterwards.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), GraphError> {
        use std::io::Write;
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        #[cfg(unix)]
        {
            // On Unix a directory can be opened and fsynced like a file;
            // this persists the rename's directory entry. An empty parent
            // means a bare relative filename — sync the current directory.
            let dir = match path.parent() {
                Some(d) if !d.as_os_str().is_empty() => d,
                _ => Path::new("."),
            };
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Loads and verifies a checkpoint from disk.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Checkpoint, GraphError> {
        Checkpoint::decode(&std::fs::read(path)?)
    }
}

/// Bounds-checked little-endian cursor over a checkpoint body.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], GraphError> {
        if self.body.len() - self.pos < n {
            return Err(GraphError::Io("checkpoint body truncated".into()));
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u64(&mut self) -> Result<u64, GraphError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            iteration: 7,
            arrays: vec![
                vec![1, 2, 3, f64::NAN.to_bits(), f64::INFINITY.to_bits()],
                vec![0xDEAD_BEEF; 3],
            ],
            frontier: FrontierSnapshot::Sparse {
                len: 100,
                vertices: vec![3, 17, 99],
            },
        }
    }

    #[test]
    fn roundtrip_all_frontier_kinds() {
        for frontier in [
            FrontierSnapshot::All { len: 10 },
            FrontierSnapshot::Dense {
                len: 130,
                words: vec![0xFFFF, 0, 0b11],
            },
            FrontierSnapshot::Sparse {
                len: 50,
                vertices: vec![0, 49],
            },
        ] {
            let ck = Checkpoint {
                frontier,
                ..sample()
            };
            let back = Checkpoint::decode(&ck.encode()).unwrap();
            assert_eq!(back, ck);
        }
    }

    #[test]
    fn corrupt_any_byte_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x08;
            assert!(
                Checkpoint::decode(&corrupt).is_err(),
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn frontier_snapshot_roundtrips_live_frontiers() {
        let dense = Frontier::from_vertices(70, &[0, 63, 64, 69]);
        for f in [
            Frontier::all(12),
            dense,
            Frontier::sparse(40, &[5, 1, 5, 30]),
        ] {
            let snap = FrontierSnapshot::capture(&f);
            let back = snap.restore();
            assert_eq!(back.len(), f.len());
            assert_eq!(back.count(), f.count());
            for v in 0..f.len() as u32 {
                assert_eq!(back.contains(v), f.contains(v));
            }
        }
    }

    #[test]
    fn restore_into_validates_shapes() {
        let ck = sample();
        let a = PropertyArray::filled_u64(5, 0);
        let b = PropertyArray::filled_u64(3, 0);
        ck.restore_into(&[&a, &b]).unwrap();
        assert_eq!(a.to_vec_u64(), ck.arrays[0]);
        assert_eq!(b.to_vec_u64(), ck.arrays[1]);
        // Wrong count or wrong length is refused without touching anything.
        assert!(ck.restore_into(&[&a]).is_err());
        let short = PropertyArray::filled_u64(2, 7);
        assert!(ck.restore_into(&[&a, &short]).is_err());
        assert_eq!(short.to_vec_u64(), vec![7, 7]);
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir();
        let path = dir.join("grazelle_ckpt_test.bin");
        let ck = sample();
        ck.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sparse_out_of_range_vertex_rejected() {
        let ck = Checkpoint {
            frontier: FrontierSnapshot::Sparse {
                len: 4,
                vertices: vec![4],
            },
            ..sample()
        };
        assert!(Checkpoint::decode(&ck.encode()).is_err());
    }
}

//! Polymer-like engine: push-only with group-partitioned edge ranges.
//!
//! Polymer is "a NUMA-aware derivative of Ligra" (§6.3) that co-locates
//! graph partitions with the threads that process them. We reproduce the
//! pattern: the out-edge array is split into per-group contiguous pieces
//! aligned to source-vertex boundaries (the same partitioning Grazelle uses,
//! see `grazelle_graph::partition`), and each group's threads process only
//! their own piece's active sources. Physical NUMA placement is simulated
//! by logical thread groups (DESIGN.md §4.2).

use crate::common::{drive, BaselineStats};
use grazelle_core::program::{AggOp, GraphProgram};
use grazelle_graph::graph::Graph;
use grazelle_graph::partition::{partition_by_edges, EdgePartition};
use grazelle_graph::types::VertexId;
use grazelle_sched::chunks::ChunkScheduler;
use grazelle_sched::pool::ThreadPool;

/// The engine: per-group partitions built once per graph.
pub struct PolymerEngine {
    partitions: Vec<EdgePartition>,
}

impl PolymerEngine {
    /// Partitions the out-edge array for `groups` logical NUMA nodes.
    pub fn new(g: &Graph, groups: usize) -> Self {
        PolymerEngine {
            partitions: partition_by_edges(g.out_csr(), groups.max(1)),
        }
    }

    /// Number of partitions (groups).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Runs `prog` to completion. `pool.num_groups()` must equal the
    /// partition count.
    pub fn run<P: GraphProgram>(
        &self,
        g: &Graph,
        prog: &P,
        pool: &ThreadPool,
        max_iterations: usize,
    ) -> BaselineStats {
        assert_eq!(
            pool.num_groups(),
            self.partitions.len(),
            "pool groups must match partitions"
        );
        let csr = g.out_csr();
        let accum = prog.accumulators();
        let values = prog.edge_values();
        let weights = csr.weights();

        drive(prog, pool, max_iterations, |frontier, _iter| {
            let conv = prog.converged();
            let op = prog.op();
            let func = prog.edge_func();
            // Per-group dynamic schedulers over each partition's vertices.
            let scheds: Vec<ChunkScheduler> = self
                .partitions
                .iter()
                .map(|p| ChunkScheduler::with_default_granularity(p.num_vertices(), 4))
                .collect();
            pool.run(|ctx| {
                let part = &self.partitions[ctx.group_id];
                let sched = &scheds[ctx.group_id];
                while let Some(chunk) = sched.next_chunk() {
                    for off in chunk.range {
                        let src = part.first_vertex + off as VertexId;
                        if !frontier.contains(src) {
                            continue;
                        }
                        let val = values.get_f64(src as usize);
                        for e in csr.edge_range(src) {
                            let dst = csr.edges()[e];
                            if let Some(c) = conv {
                                if c.contains(dst) {
                                    continue;
                                }
                            }
                            let w = weights.map_or(0.0, |ws| ws[e]);
                            let msg = func.apply(val, w);
                            match op {
                                AggOp::Sum => accum.fetch_add_f64(dst as usize, msg),
                                AggOp::Min => {
                                    accum.fetch_min_f64(dst as usize, msg);
                                }
                                AggOp::Max => {
                                    accum.fetch_max_f64(dst as usize, msg);
                                }
                            }
                        }
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_apps::cc::{reference_undirected, ConnectedComponents};
    use grazelle_apps::pagerank::{self, PageRank};
    use grazelle_graph::gen::rmat::{rmat, RmatConfig};

    fn test_graph() -> Graph {
        let mut el = rmat(&RmatConfig::graph500(9, 5.0, 17));
        el.symmetrize();
        el.sort_and_dedup();
        Graph::from_edgelist(&el).unwrap()
    }

    #[test]
    fn pagerank_matches_reference_across_group_counts() {
        let g = test_graph();
        let want = pagerank::reference(&g, pagerank::DAMPING, 5);
        for groups in [1, 2, 4] {
            let engine = PolymerEngine::new(&g, groups);
            let pool = ThreadPool::new(4, groups);
            let prog = PageRank::new(&g, pagerank::DAMPING);
            engine.run(&g, &prog, &pool, 5);
            for (i, (a, b)) in prog.ranks().iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-9, "groups={groups} v{i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = test_graph();
        let engine = PolymerEngine::new(&g, 2);
        let pool = ThreadPool::new(4, 2);
        let prog = ConnectedComponents::new(g.num_vertices());
        engine.run(&g, &prog, &pool, 1000);
        assert_eq!(prog.labels(), reference_undirected(&g));
    }

    #[test]
    fn partition_count_matches_groups() {
        let g = test_graph();
        assert_eq!(PolymerEngine::new(&g, 3).num_partitions(), 3);
    }

    #[test]
    #[should_panic(expected = "pool groups must match")]
    fn mismatched_pool_rejected() {
        let g = test_graph();
        let engine = PolymerEngine::new(&g, 2);
        let pool = ThreadPool::new(4, 4);
        let prog = ConnectedComponents::new(g.num_vertices());
        engine.run(&g, &prog, &pool, 10);
    }
}

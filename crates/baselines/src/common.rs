//! Shared driver scaffolding for the baseline engines.
//!
//! Every baseline runs the same synchronous loop as Grazelle — reset
//! accumulators, Edge phase, Vertex phase, frontier swap — differing only
//! in the Edge phase, which each engine supplies as a closure over the
//! current frontier.

use grazelle_core::engine::vertex::{reset_accumulators, vertex_phase};
use grazelle_core::frontier::{DenseBitmap, Frontier};
use grazelle_core::program::GraphProgram;
use grazelle_core::stats::Profiler;
use grazelle_sched::pool::ThreadPool;
use grazelle_vsparse::simd::SimdLevel;
use std::time::{Duration, Instant};

/// Outcome of one baseline run.
#[derive(Debug, Clone)]
pub struct BaselineStats {
    /// Iterations executed.
    pub iterations: usize,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// Runs the standard synchronous loop with `edge_phase` supplying the
/// engine-specific message exchange. The baselines deliberately use the
/// scalar Vertex phase (none of the original frameworks vectorize it).
pub fn drive<P, F>(
    prog: &P,
    pool: &ThreadPool,
    max_iterations: usize,
    mut edge_phase: F,
) -> BaselineStats
where
    P: GraphProgram,
    F: FnMut(&Frontier, usize),
{
    let prof = Profiler::new();
    let mut frontier = prog.initial_frontier();
    let start = Instant::now();
    let mut iterations = 0;
    for iter in 0..max_iterations {
        prog.pre_iteration(iter);
        reset_accumulators(prog, pool, &prof);
        edge_phase(&frontier, iter);
        let next = prog
            .uses_frontier()
            .then(|| DenseBitmap::new(prog.num_vertices()));
        let active = vertex_phase(prog, pool, next.as_ref(), SimdLevel::Scalar, &prof);
        if let Some(nb) = next {
            frontier = Frontier::Dense(nb);
        }
        iterations = iter + 1;
        if prog.should_stop(iter, active) {
            break;
        }
    }
    BaselineStats {
        iterations,
        wall: start.elapsed(),
    }
}

/// Snapshot of a frontier as a sparse vertex list (Ligra's sparse
/// representation; also used to size push work lists).
pub fn to_sparse(frontier: &Frontier) -> Vec<u32> {
    match frontier {
        Frontier::All { len } => (0..*len as u32).collect(),
        Frontier::Dense(bm) => bm.iter().collect(),
        Frontier::Sparse { vertices, .. } => vertices.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_core::program::AggOp;
    use grazelle_core::properties::PropertyArray;

    struct CountDown {
        n: usize,
        left: PropertyArray,
        acc: PropertyArray,
    }
    impl GraphProgram for CountDown {
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn op(&self) -> AggOp {
            AggOp::Sum
        }
        fn edge_values(&self) -> &PropertyArray {
            &self.left
        }
        fn accumulators(&self) -> &PropertyArray {
            &self.acc
        }
        fn apply(&self, v: u32) -> bool {
            let x = self.left.get_f64(v as usize);
            self.left.set_f64(v as usize, x - 1.0);
            x - 1.0 > 0.0
        }
        fn uses_frontier(&self) -> bool {
            true
        }
        fn initial_frontier(&self) -> Frontier {
            Frontier::all(self.n)
        }
    }

    #[test]
    fn drive_runs_until_program_stops() {
        let prog = CountDown {
            n: 4,
            left: PropertyArray::filled_f64(4, 3.0),
            acc: PropertyArray::new(4),
        };
        let pool = ThreadPool::single_group(2);
        let mut edges = 0;
        let stats = drive(&prog, &pool, 100, |_f, _i| edges += 1);
        assert_eq!(stats.iterations, 3);
        assert_eq!(edges, 3);
    }

    #[test]
    fn drive_respects_iteration_cap() {
        let prog = CountDown {
            n: 2,
            left: PropertyArray::filled_f64(2, 1e9),
            acc: PropertyArray::new(2),
        };
        let pool = ThreadPool::single_group(1);
        let stats = drive(&prog, &pool, 7, |_, _| {});
        assert_eq!(stats.iterations, 7);
    }

    #[test]
    fn sparse_snapshot() {
        let f = Frontier::from_vertices(10, &[2, 5, 7]);
        assert_eq!(to_sparse(&f), vec![2, 5, 7]);
        let f = Frontier::all(3);
        assert_eq!(to_sparse(&f), vec![0, 1, 2]);
    }
}

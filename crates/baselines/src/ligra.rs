//! Ligra-like hybrid engine over Compressed-Sparse.
//!
//! Reproduces the `edgeMap`/`vertexMap` pattern of Shun & Blelloch's Ligra:
//! a hybrid push/pull engine whose direction is chosen from frontier
//! occupancy, with Ligra's signature sparse ↔ dense frontier representation
//! switching. The five loop-parallelization configurations of the paper's
//! Figure 1 are all expressible:
//!
//! | Config               | push outer | push inner | pull outer | pull inner |
//! |----------------------|-----------|-----------|-----------|------------|
//! | `PushS`              | parallel  | serial    | —         | —          |
//! | `PushP`              | parallel  | parallel  | —         | —          |
//! | `PushP+PullS`        | parallel  | parallel  | parallel  | serial     |
//! | `PushP+PullP`        | parallel  | parallel  | parallel  | parallel + CAS |
//! | `PushP+PullP-NoSync` | parallel  | parallel  | parallel  | parallel, racy |
//!
//! The last configuration "leads to incorrect output" (paper Figure 1
//! caption) and exists only to isolate write-conflict cost from
//! synchronization cost.

use crate::common::{drive, to_sparse, BaselineStats};
use grazelle_core::frontier::Frontier;
use grazelle_core::program::{AggOp, GraphProgram};
use grazelle_graph::graph::Graph;
use grazelle_graph::types::VertexId;
use grazelle_sched::pool::ThreadPool;
use grazelle_sched::traditional::parallel_for_default;

/// Loop-parallelization and frontier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LigraConfig {
    /// Parallelize the push engine's inner loop (flattened over the active
    /// edge set, as Cilk's nested `parallel_for` effectively does).
    pub push_inner_parallel: bool,
    /// Enable the pull engine (hybrid operation).
    pub use_pull: bool,
    /// Parallelize the pull engine's inner loop (flattened over the in-edge
    /// array).
    pub pull_inner_parallel: bool,
    /// Synchronize inner-loop pull updates (CAS). `false` reproduces the
    /// paper's `-NoSync` arm: racy, possibly incorrect, still memory-safe.
    pub pull_sync: bool,
    /// Disable the sparse frontier representation (the paper's Ligra-Dense
    /// comparison build).
    pub dense_only: bool,
    /// Direction threshold: choose pull when `|F| + outdeg(F) > m · frac`
    /// (Ligra's default is 1/20).
    pub threshold_frac: f64,
}

impl LigraConfig {
    /// Figure 1 `PushS`.
    pub fn push_s() -> Self {
        LigraConfig {
            push_inner_parallel: false,
            use_pull: false,
            pull_inner_parallel: false,
            pull_sync: true,
            dense_only: false,
            threshold_frac: 0.05,
        }
    }

    /// Figure 1 `PushP`.
    pub fn push_p() -> Self {
        LigraConfig {
            push_inner_parallel: true,
            ..Self::push_s()
        }
    }

    /// Figure 1 `PushP+PullS` — Ligra's standard hybrid.
    pub fn hybrid_pull_s() -> Self {
        LigraConfig {
            push_inner_parallel: true,
            use_pull: true,
            ..Self::push_s()
        }
    }

    /// Figure 1 `PushP+PullP`.
    pub fn hybrid_pull_p() -> Self {
        LigraConfig {
            pull_inner_parallel: true,
            ..Self::hybrid_pull_s()
        }
    }

    /// Figure 1 `PushP+PullP-NoSync` (incorrect output by design).
    pub fn hybrid_pull_p_nosync() -> Self {
        LigraConfig {
            pull_sync: false,
            ..Self::hybrid_pull_p()
        }
    }

    /// The paper's "Ligra" comparison build (Figures 11–13): standard
    /// hybrid with sparse/dense switching.
    pub fn standard() -> Self {
        Self::hybrid_pull_s()
    }

    /// The paper's "Ligra-Dense" comparison build.
    pub fn dense() -> Self {
        LigraConfig {
            dense_only: true,
            ..Self::standard()
        }
    }
}

/// The engine: prebuilt per-graph state reused across runs.
pub struct LigraEngine {
    /// Per-CSC-edge destination vertex (flattened inner-loop parallelism
    /// needs the owner of each edge position without a per-edge search).
    edge_dst: Vec<VertexId>,
    out_degrees: Vec<u32>,
}

impl LigraEngine {
    /// Prepares the engine for a graph.
    pub fn new(g: &Graph) -> Self {
        let csc = g.in_csr();
        let mut edge_dst = vec![0 as VertexId; csc.num_edges()];
        for v in 0..csc.num_vertices() as VertexId {
            for e in csc.edge_range(v) {
                edge_dst[e] = v;
            }
        }
        LigraEngine {
            edge_dst,
            out_degrees: g.out_csr().degrees(),
        }
    }

    /// Runs `prog` to completion.
    pub fn run<P: GraphProgram>(
        &self,
        g: &Graph,
        prog: &P,
        pool: &ThreadPool,
        cfg: &LigraConfig,
        max_iterations: usize,
    ) -> BaselineStats {
        let m = g.num_edges().max(1);
        drive(prog, pool, max_iterations, |frontier, _iter| {
            let use_pull = cfg.use_pull && self.select_pull(frontier, m, cfg);
            if use_pull {
                self.edge_map_pull(g, prog, frontier, pool, cfg);
            } else {
                self.edge_map_push(g, prog, frontier, pool, cfg);
            }
        })
    }

    /// Ligra's direction heuristic: dense/pull when the frontier plus its
    /// out-edges exceed a fraction of |E|.
    fn select_pull(&self, frontier: &Frontier, m: usize, cfg: &LigraConfig) -> bool {
        match frontier {
            Frontier::All { .. } => true,
            Frontier::Dense(bm) => {
                let mut work = 0usize;
                for v in bm.iter() {
                    work += 1 + self.out_degrees[v as usize] as usize;
                    if work as f64 > m as f64 * cfg.threshold_frac {
                        return true;
                    }
                }
                false
            }
            Frontier::Sparse { vertices, .. } => {
                let mut work = 0usize;
                for &v in vertices {
                    work += 1 + self.out_degrees[v as usize] as usize;
                    if work as f64 > m as f64 * cfg.threshold_frac {
                        return true;
                    }
                }
                false
            }
        }
    }

    fn edge_map_push<P: GraphProgram>(
        &self,
        g: &Graph,
        prog: &P,
        frontier: &Frontier,
        pool: &ThreadPool,
        cfg: &LigraConfig,
    ) {
        let csr = g.out_csr();
        let accum = prog.accumulators();
        let values = prog.edge_values();
        let conv = prog.converged();
        let op = prog.op();
        let func = prog.edge_func();
        let weights = csr.weights();

        let update = |src: VertexId, e: usize| {
            let dst = csr.edges()[e];
            if let Some(c) = conv {
                if c.contains(dst) {
                    return;
                }
            }
            let w = weights.map_or(0.0, |ws| ws[e]);
            let msg = func.apply(values.get_f64(src as usize), w);
            match op {
                AggOp::Sum => accum.fetch_add_f64(dst as usize, msg),
                AggOp::Min => {
                    accum.fetch_min_f64(dst as usize, msg);
                }
                AggOp::Max => {
                    accum.fetch_max_f64(dst as usize, msg);
                }
            }
        };

        // Sparse (list) representation unless configured dense-only; the
        // dense path scans the whole bitmap, which is exactly Ligra-Dense's
        // per-iteration overhead on near-empty frontiers.
        let active: Vec<VertexId> = if cfg.dense_only {
            match frontier {
                Frontier::All { len } => (0..*len as VertexId).collect(),
                Frontier::Dense(bm) => {
                    // Forced dense scan of every word.
                    let mut out = Vec::new();
                    for v in 0..bm.len() as VertexId {
                        if bm.contains(v) {
                            out.push(v);
                        }
                    }
                    out
                }
                Frontier::Sparse { vertices, .. } => vertices.clone(),
            }
        } else {
            to_sparse(frontier)
        };

        if cfg.push_inner_parallel {
            // Flattened nested loop: prefix-sum active out-degrees, then one
            // parallel loop over active edge positions.
            let mut offsets = Vec::with_capacity(active.len() + 1);
            offsets.push(0usize);
            for &v in &active {
                offsets.push(offsets.last().unwrap() + self.out_degrees[v as usize] as usize);
            }
            let total = *offsets.last().unwrap();
            parallel_for_default(pool, 0..total, |i| {
                let idx = offsets.partition_point(|&o| o <= i) - 1;
                let src = active[idx];
                let e = csr.edge_range(src).start + (i - offsets[idx]);
                update(src, e);
            });
        } else {
            parallel_for_default(pool, 0..active.len(), |i| {
                let src = active[i];
                for e in csr.edge_range(src) {
                    update(src, e);
                }
            });
        }
    }

    fn edge_map_pull<P: GraphProgram>(
        &self,
        g: &Graph,
        prog: &P,
        frontier: &Frontier,
        pool: &ThreadPool,
        cfg: &LigraConfig,
    ) {
        let csc = g.in_csr();
        let accum = prog.accumulators();
        let values = prog.edge_values();
        let conv = prog.converged();
        let op = prog.op();
        let func = prog.edge_func();
        let weights = csc.weights();

        if cfg.pull_inner_parallel {
            // Fully flattened nested loop over the in-edge array — the
            // configuration the paper shows collapses under write conflicts.
            parallel_for_default(pool, 0..csc.num_edges(), |e| {
                let dst = self.edge_dst[e];
                if let Some(c) = conv {
                    if c.contains(dst) {
                        return;
                    }
                }
                let src = csc.edges()[e];
                if !frontier.contains(src) {
                    return;
                }
                let w = weights.map_or(0.0, |ws| ws[e]);
                let msg = func.apply(values.get_f64(src as usize), w);
                if cfg.pull_sync {
                    match op {
                        AggOp::Sum => accum.fetch_add_f64(dst as usize, msg),
                        AggOp::Min => {
                            accum.fetch_min_f64(dst as usize, msg);
                        }
                        AggOp::Max => {
                            accum.fetch_max_f64(dst as usize, msg);
                        }
                    }
                } else {
                    accum.combine_nonatomic_f64(dst as usize, msg, |a, b| op.combine(a, b));
                }
            });
        } else {
            // Classic pull: outer parallel over destinations, inner serial
            // with register accumulation and a single plain store.
            parallel_for_default(pool, 0..csc.num_vertices(), |dst| {
                let dst = dst as VertexId;
                if let Some(c) = conv {
                    if c.contains(dst) {
                        return;
                    }
                }
                let mut acc = op.identity();
                for e in csc.edge_range(dst) {
                    let src = csc.edges()[e];
                    if !frontier.contains(src) {
                        continue;
                    }
                    let w = weights.map_or(0.0, |ws| ws[e]);
                    acc = op.combine(acc, func.apply(values.get_f64(src as usize), w));
                }
                accum.set_f64(dst as usize, acc);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_apps::bfs::{reference_depths, validate_parents, Bfs};
    use grazelle_apps::cc::{reference_undirected, ConnectedComponents};
    use grazelle_apps::pagerank::{self, PageRank};
    use grazelle_graph::edgelist::EdgeList;
    use grazelle_graph::gen::rmat::{rmat, RmatConfig};

    fn test_graph() -> Graph {
        let mut el = rmat(&RmatConfig::graph500(9, 6.0, 42));
        el.symmetrize();
        el.sort_and_dedup();
        Graph::from_edgelist(&el).unwrap()
    }

    #[test]
    fn pagerank_matches_reference_in_all_correct_configs() {
        let g = test_graph();
        let want = pagerank::reference(&g, pagerank::DAMPING, 6);
        let engine = LigraEngine::new(&g);
        let pool = ThreadPool::single_group(3);
        for cfg in [
            LigraConfig::push_s(),
            LigraConfig::push_p(),
            LigraConfig::hybrid_pull_s(),
            LigraConfig::hybrid_pull_p(),
            LigraConfig::dense(),
        ] {
            let prog = PageRank::new(&g, pagerank::DAMPING);
            engine.run(&g, &prog, &pool, &cfg, 6);
            let got = prog.ranks();
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-9, "{cfg:?} vertex {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn nosync_config_runs_and_is_singlethread_correct() {
        let g = test_graph();
        let engine = LigraEngine::new(&g);
        let pool = ThreadPool::single_group(1);
        let prog = PageRank::new(&g, pagerank::DAMPING);
        engine.run(&g, &prog, &pool, &LigraConfig::hybrid_pull_p_nosync(), 4);
        let want = pagerank::reference(&g, pagerank::DAMPING, 4);
        for (a, b) in prog.ranks().iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = test_graph();
        let want = reference_undirected(&g);
        let engine = LigraEngine::new(&g);
        let pool = ThreadPool::single_group(2);
        for cfg in [LigraConfig::standard(), LigraConfig::dense()] {
            let prog = ConnectedComponents::new(g.num_vertices());
            engine.run(&g, &prog, &pool, &cfg, 1000);
            assert_eq!(prog.labels(), want, "{cfg:?}");
        }
    }

    #[test]
    fn bfs_depths_match_reference() {
        let g = test_graph();
        let engine = LigraEngine::new(&g);
        let pool = ThreadPool::single_group(2);
        for cfg in [
            LigraConfig::standard(),
            LigraConfig::dense(),
            LigraConfig::push_p(),
        ] {
            let prog = Bfs::new(g.num_vertices(), 0);
            engine.run(&g, &prog, &pool, &cfg, 1000);
            let depths = validate_parents(&g, 0, &prog.parents());
            assert_eq!(depths, reference_depths(&g, 0), "{cfg:?}");
        }
    }

    #[test]
    fn direction_switching_happens_for_bfs() {
        // A long path forces a tiny frontier -> push; a dense start (CC)
        // forces pull. Just validate the selector's two extremes.
        let mut el = EdgeList::new(1000);
        for v in 0..999u32 {
            el.push(v, v + 1).unwrap();
        }
        let g = Graph::from_edgelist(&el).unwrap();
        let engine = LigraEngine::new(&g);
        let cfg = LigraConfig::standard();
        assert!(!engine.select_pull(&Frontier::from_vertices(1000, &[5]), g.num_edges(), &cfg));
        assert!(engine.select_pull(&Frontier::all(1000), g.num_edges(), &cfg));
    }
}

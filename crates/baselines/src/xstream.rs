//! X-Stream-like engine: edge-centric scatter/shuffle/gather.
//!
//! X-Stream "creates cache-sized streaming partitions from an unordered
//! list of edges and performs in-memory shuffle operations to exchange
//! messages between them" (§6.3). Each iteration:
//!
//! 1. **Scatter** — stream the entire unordered edge list; for every edge
//!    whose source is active, emit an `(dst, value)` update into the
//!    destination's streaming partition (per-thread buffers, no locks).
//! 2. **Shuffle/Gather** — per partition, fold its updates into the
//!    accumulators (one thread per partition at a time → plain stores).
//!
//! The two inefficiencies the paper attributes to X-Stream fall out
//! naturally: every edge is streamed every iteration regardless of frontier
//! occupancy, and updates are materialized and re-read through memory
//! rather than applied in place.

use crate::common::{drive, BaselineStats};
use grazelle_core::program::GraphProgram;
use grazelle_graph::graph::Graph;
use grazelle_graph::types::VertexId;
use grazelle_sched::chunks::ChunkScheduler;
use grazelle_sched::pool::ThreadPool;
use std::sync::Mutex;

/// One shuffled update.
#[derive(Debug, Clone, Copy)]
struct Update {
    dst: VertexId,
    value: f64,
}

/// The engine: the unordered edge list plus partition geometry.
pub struct XStreamEngine {
    /// Unordered `(src, dst)` stream.
    edges: Vec<(VertexId, VertexId)>,
    weights: Option<Vec<f64>>,
    /// Vertices per streaming partition (sized so per-partition vertex
    /// state fits a cache-like budget).
    partition_size: usize,
    num_partitions: usize,
}

impl XStreamEngine {
    /// Default per-partition vertex count (≈ 256 KiB of 8-byte state).
    pub const DEFAULT_PARTITION_VERTICES: usize = 32 * 1024;

    /// Builds the engine from a graph, with the default partition size.
    pub fn new(g: &Graph) -> Self {
        Self::with_partition_size(g, Self::DEFAULT_PARTITION_VERTICES)
    }

    /// Builds the engine with an explicit streaming-partition size.
    pub fn with_partition_size(g: &Graph, partition_vertices: usize) -> Self {
        assert!(partition_vertices >= 1);
        let csr = g.out_csr();
        let mut edges = Vec::with_capacity(g.num_edges());
        let mut weights = csr.weights().map(|_| Vec::with_capacity(g.num_edges()));
        for (src, dst, e) in csr.iter_edges() {
            edges.push((src, dst));
            if let (Some(wout), Some(win)) = (&mut weights, csr.weights()) {
                wout.push(win[e]);
            }
        }
        let num_partitions = g.num_vertices().div_ceil(partition_vertices).max(1);
        XStreamEngine {
            edges,
            weights,
            partition_size: partition_vertices,
            num_partitions,
        }
    }

    /// Number of streaming partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Runs `prog` to completion.
    pub fn run<P: GraphProgram>(
        &self,
        prog: &P,
        pool: &ThreadPool,
        max_iterations: usize,
    ) -> BaselineStats {
        let accum = prog.accumulators();
        let values = prog.edge_values();
        let nthreads = pool.num_threads();

        drive(prog, pool, max_iterations, |frontier, _iter| {
            let op = prog.op();
            let func = prog.edge_func();
            let conv = prog.converged();
            // Per-thread, per-partition update buffers (lock-free writes).
            let buffers: Vec<Vec<Mutex<Vec<Update>>>> = (0..nthreads)
                .map(|_| {
                    (0..self.num_partitions)
                        .map(|_| Mutex::new(Vec::new()))
                        .collect()
                })
                .collect();

            // Scatter: stream the whole edge list in chunks.
            let sched = ChunkScheduler::with_default_granularity(self.edges.len(), nthreads);
            pool.run(|ctx| {
                let mine = &buffers[ctx.global_id];
                while let Some(chunk) = sched.next_chunk() {
                    for e in chunk.range {
                        let (src, dst) = self.edges[e];
                        if !frontier.contains(src) {
                            continue;
                        }
                        if let Some(c) = conv {
                            if c.contains(dst) {
                                continue;
                            }
                        }
                        let w = self.weights.as_ref().map_or(0.0, |ws| ws[e]);
                        let value = func.apply(values.get_f64(src as usize), w);
                        let part = dst as usize / self.partition_size;
                        mine[part]
                            .lock()
                            .expect("update buffer poisoned")
                            .push(Update { dst, value });
                    }
                }
            });

            // Shuffle + gather: one partition is owned by one task at a
            // time, so accumulator writes are plain read-modify-writes.
            let gather_sched = ChunkScheduler::new(self.num_partitions, self.num_partitions);
            pool.run(|_ctx| {
                while let Some(chunk) = gather_sched.next_chunk() {
                    for part in chunk.range {
                        for tbuf in &buffers {
                            for u in tbuf[part].lock().expect("update buffer poisoned").iter() {
                                let cur = accum.get_f64(u.dst as usize);
                                accum.set_f64(u.dst as usize, op.combine(cur, u.value));
                            }
                        }
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_apps::bfs::{reference_depths, validate_parents, Bfs};
    use grazelle_apps::cc::{reference_undirected, ConnectedComponents};
    use grazelle_apps::pagerank::{self, PageRank};
    use grazelle_graph::gen::rmat::{rmat, RmatConfig};

    fn test_graph() -> Graph {
        let mut el = rmat(&RmatConfig::graph500(9, 5.0, 31));
        el.symmetrize();
        el.sort_and_dedup();
        Graph::from_edgelist(&el).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = test_graph();
        // Small partitions to exercise the multi-partition path.
        let engine = XStreamEngine::with_partition_size(&g, 100);
        assert!(engine.num_partitions() > 1);
        let prog = PageRank::new(&g, pagerank::DAMPING);
        let pool = ThreadPool::single_group(3);
        engine.run(&prog, &pool, 6);
        let want = pagerank::reference(&g, pagerank::DAMPING, 6);
        for (i, (a, b)) in prog.ranks().iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "v{i}: {a} vs {b}");
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = test_graph();
        let engine = XStreamEngine::with_partition_size(&g, 64);
        let prog = ConnectedComponents::new(g.num_vertices());
        let pool = ThreadPool::single_group(2);
        engine.run(&prog, &pool, 1000);
        assert_eq!(prog.labels(), reference_undirected(&g));
    }

    #[test]
    fn bfs_depths_match() {
        let g = test_graph();
        let engine = XStreamEngine::new(&g);
        let prog = Bfs::new(g.num_vertices(), 0);
        let pool = ThreadPool::single_group(2);
        engine.run(&prog, &pool, 1000);
        let depths = validate_parents(&g, 0, &prog.parents());
        assert_eq!(depths, reference_depths(&g, 0));
    }

    #[test]
    fn partition_geometry() {
        let g = test_graph(); // 512 vertices at scale 9
        let e = XStreamEngine::with_partition_size(&g, 100);
        assert_eq!(e.num_partitions(), g.num_vertices().div_ceil(100));
        let e = XStreamEngine::new(&g);
        assert_eq!(e.num_partitions(), 1);
    }
}

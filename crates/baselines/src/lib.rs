//! Baseline engine patterns the paper compares against (§6.3).
//!
//! These are reimplementations of the *engine patterns* of Ligra, Polymer,
//! GraphMat, and X-Stream — not ports of those codebases. Comparing
//! patterns under one roof is what Figures 1 and 11–13 measure (DESIGN.md
//! §4.6). All four execute the same [`GraphProgram`]s as Grazelle, differ
//! only in how the Edge phase runs, and all use the plain Compressed-Sparse
//! structure (or, for X-Stream, an unordered edge list) rather than
//! Vector-Sparse:
//!
//! * [`ligra`] — hybrid push/pull `edgeMap` with sparse/dense frontier
//!   switching and the five loop-parallelization configurations of
//!   Figure 1 (PushS, PushP, PushP+PullS, PushP+PullP, ±NoSync).
//! * [`polymer`] — push-only with group-partitioned (NUMA-style) edge
//!   ranges, per the Polymer design the paper describes.
//! * [`graphmat`] — SpMV-formulated: every iteration streams the full
//!   matrix, masking inactive sources per-edge ("does not handle the
//!   frontier as efficiently as the other frameworks").
//! * [`xstream`] — edge-centric scatter/shuffle/gather over streaming
//!   partitions ("an update targeting a vertex in a particular streaming
//!   partition requires loading and processing the entire partition").
//!
//! [`GraphProgram`]: grazelle_core::program::GraphProgram

pub mod common;
pub mod graphmat;
pub mod ligra;
pub mod polymer;
pub mod xstream;

pub use graphmat::GraphMatEngine;
pub use ligra::{LigraConfig, LigraEngine};
pub use polymer::PolymerEngine;
pub use xstream::XStreamEngine;

//! GraphMat-like engine: the SpMV formulation.
//!
//! GraphMat maps vertex programs onto generalized sparse matrix-vector
//! multiplication. Each iteration is one SpMV over the (transposed)
//! adjacency matrix on the program's `(combine, edge_func)` semiring, with
//! the frontier applied as a per-element mask on the *input* vector. The
//! consequence the paper highlights: GraphMat "is built on an engine
//! intended for sparse matrix-vector multiplication and therefore does not
//! handle the frontier as efficiently as the other frameworks" (§6.3) —
//! every iteration streams the full matrix, paying per-edge mask checks
//! even when almost nothing is active, and converged destinations are not
//! skipped either.

use crate::common::{drive, BaselineStats};
use grazelle_core::program::GraphProgram;
use grazelle_graph::graph::Graph;
use grazelle_graph::types::VertexId;
use grazelle_sched::pool::ThreadPool;
use grazelle_sched::traditional::parallel_for_default;

/// The engine (stateless beyond the graph's CSC).
pub struct GraphMatEngine;

impl GraphMatEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        GraphMatEngine
    }

    /// Runs `prog` to completion.
    pub fn run<P: GraphProgram>(
        &self,
        g: &Graph,
        prog: &P,
        pool: &ThreadPool,
        max_iterations: usize,
    ) -> BaselineStats {
        let csc = g.in_csr();
        let accum = prog.accumulators();
        let values = prog.edge_values();
        let weights = csc.weights();

        drive(prog, pool, max_iterations, |frontier, _iter| {
            let op = prog.op();
            let func = prog.edge_func();
            // One SpMV row (= destination) per task: dot product of the
            // row's sparsity pattern with the masked input vector. The
            // whole matrix is streamed regardless of frontier occupancy.
            parallel_for_default(pool, 0..csc.num_vertices(), |dst| {
                let dst = dst as VertexId;
                let mut acc = op.identity();
                for e in csc.edge_range(dst) {
                    let src = csc.edges()[e];
                    if !frontier.contains(src) {
                        continue; // mask check paid per edge, every time
                    }
                    let w = weights.map_or(0.0, |ws| ws[e]);
                    acc = op.combine(acc, func.apply(values.get_f64(src as usize), w));
                }
                accum.set_f64(dst as usize, acc);
            });
        })
    }
}

impl Default for GraphMatEngine {
    fn default() -> Self {
        GraphMatEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_apps::bfs::{reference_depths, validate_parents, Bfs};
    use grazelle_apps::cc::{reference_undirected, ConnectedComponents};
    use grazelle_apps::pagerank::{self, PageRank};
    use grazelle_graph::gen::rmat::{rmat, RmatConfig};

    fn test_graph() -> Graph {
        let mut el = rmat(&RmatConfig::graph500(9, 5.0, 23));
        el.symmetrize();
        el.sort_and_dedup();
        Graph::from_edgelist(&el).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = test_graph();
        let prog = PageRank::new(&g, pagerank::DAMPING);
        let pool = ThreadPool::single_group(3);
        GraphMatEngine::new().run(&g, &prog, &pool, 6);
        let want = pagerank::reference(&g, pagerank::DAMPING, 6);
        for (a, b) in prog.ranks().iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = test_graph();
        let prog = ConnectedComponents::new(g.num_vertices());
        let pool = ThreadPool::single_group(2);
        GraphMatEngine::new().run(&g, &prog, &pool, 1000);
        assert_eq!(prog.labels(), reference_undirected(&g));
    }

    #[test]
    fn bfs_depths_match() {
        let g = test_graph();
        let prog = Bfs::new(g.num_vertices(), 0);
        let pool = ThreadPool::single_group(2);
        GraphMatEngine::new().run(&g, &prog, &pool, 1000);
        let depths = validate_parents(&g, 0, &prog.parents());
        assert_eq!(depths, reference_depths(&g, 0));
    }
}

//! Deterministic fault-injected soak for the serving layer (ISSUE 7).
//!
//! Three waves of mixed queries run through a server whose fault plan
//! injects admission stalls, per-query panics (both recoverable and
//! budget-exhausting), and a deadline storm — at 1, 2, and 8 executor
//! threads. The assertions are the serving layer's contract:
//!
//! * the process never exits or hangs (the test itself completing is the
//!   proof — every ticket is waited with a finite outcome);
//! * the admission queue stays bounded throughout;
//! * every query that completes returns results **bit-identical** to a
//!   single-shot `run_resilient` execution of the same query;
//! * shed/expired/failed queries carry typed `ServeError`s, and the
//!   drain-time counters match the fault plan exactly.
//!
//! When `GRAZELLE_SOAK_STATS_DIR` is set, each server's final stats
//! rendering is written there (`soak-<threads>.txt`) for CI artifacts.

use grazelle_core::engine::PreparedGraph;
use grazelle_core::faults::{ServeFaultPlan, ServeInjector};
use grazelle_core::{EngineConfig, ResilienceContext};
use grazelle_graph::edgelist::EdgeList;
use grazelle_graph::faults::RetryPolicy;
use grazelle_graph::graph::Graph;
use grazelle_sched::pool::ThreadPool;
use grazelle_serve::{single_shot, Query, ServeConfig, ServeError, Server};
use std::sync::Arc;
use std::time::Duration;

const WAVES: usize = 3;
const WAVE_LEN: usize = 16;
const QUEUE_CAP: usize = 64;

/// Deterministic weighted ring-with-chords digraph: connected, small
/// diameter, enough irregularity that BFS/SSSP/CC/Reach all do real work
/// (weights so SSSP's min-plus edge function has something to add).
fn soak_graph(n: usize) -> (Arc<Graph>, Arc<PreparedGraph>) {
    let mut el = EdgeList::new(n);
    let w = |s: u32, d: u32| ((s * 13 + d * 7) % 10 + 1) as f64;
    for v in 0..n as u32 {
        let d = (v + 1) % n as u32;
        el.push_weighted(v, d, w(v, d)).unwrap();
        if v % 3 == 0 {
            let d = (v * 7 + 2) % n as u32;
            el.push_weighted(v, d, w(v, d)).unwrap();
        }
        if v % 5 == 0 {
            let s = (v * 11 + 3) % n as u32;
            el.push_weighted(s, v, w(s, v)).unwrap();
        }
    }
    let g = Graph::from_edgelist(&el).unwrap();
    let pg = PreparedGraph::new(&g);
    (Arc::new(g), Arc::new(pg))
}

/// The query at admission sequence `seq`. PageRank is deliberately kept
/// off every fault-plan seq so no floating-point query ever takes the
/// degraded (1-thread scalar) path — integer/min-plus results are
/// thread-count invariant, which keeps the bit-identity check exact.
fn stream_query(seq: usize) -> Query {
    match seq % WAVE_LEN {
        0 => Query::Bfs { root: 1 },
        1 => Query::Cc,
        2 => Query::Reach { root: 2 },
        3 => Query::Reach { root: 5 },
        4 => Query::Sssp { root: 0 },
        5 => Query::Bfs { root: 7 },
        6 => Query::Reach { root: 9 },
        7 => Query::Cc,
        8 => Query::Bfs { root: 11 },
        9 => Query::Reach { root: 13 },
        10 => Query::Sssp { root: 3 },
        11 => Query::Bfs { root: 17 },
        12 => Query::PageRank { iterations: 6 },
        13 => Query::Reach { root: 19 },
        14 => Query::Cc,
        15 => Query::Bfs { root: 23 },
        _ => unreachable!(),
    }
}

/// One full soak at `threads` executor threads. Returns the final stats
/// rendering for the CI artifact.
fn soak_at(threads: usize) -> String {
    let (g, pg) = soak_graph(600);
    // seq 0  (Bfs):  2 panics — recovers on the normal pool.
    // seq 8  (Bfs):  3 panics — recovers only on the degraded attempt.
    // seq 24 (Bfs):  4 panics — exhausts the whole ladder, typed Failed.
    // seqs 32..35:   deadline storm — expired at iteration 0.
    let plan = ServeFaultPlan::clean()
        .with_admission_stall(5, Duration::from_millis(1))
        .with_admission_stall(21, Duration::from_micros(500))
        .with_query_panic(0, 2)
        .with_query_panic(8, 3)
        .with_query_panic(24, 4)
        .with_deadline_storm(32, 3);
    let cfg = ServeConfig::new()
        .with_engine(EngineConfig::new().with_threads(threads))
        .with_queue_capacity(QUEUE_CAP)
        .with_retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(200),
        })
        .with_seed(0x50AC * threads as u64 + 1);
    let server = Server::start_with_faults(
        Arc::clone(&g),
        Arc::clone(&pg),
        cfg,
        Some(Arc::new(ServeInjector::new(plan))),
        None,
    );

    let ref_pool = ThreadPool::single_group(threads);
    let ref_cfg = EngineConfig::new().with_threads(threads);
    for wave in 0..WAVES {
        assert!(
            server.queue_depth() <= QUEUE_CAP,
            "queue depth must stay bounded"
        );
        let tickets: Vec<_> = (0..WAVE_LEN)
            .map(|i| {
                let seq = wave * WAVE_LEN + i;
                let t = server
                    .submit(stream_query(seq))
                    .expect("waves fit the queue, nothing sheds");
                assert_eq!(t.seq(), seq, "admission order is the fault-plan key");
                t
            })
            .collect();
        assert!(server.queue_depth() <= QUEUE_CAP);
        for t in tickets {
            let seq = t.seq();
            match t.wait() {
                Ok(served) => {
                    // Bit-identity: the served result must equal a fresh
                    // single-shot run of the same query.
                    let direct = single_shot(
                        &g,
                        &pg,
                        &ref_cfg,
                        &ResilienceContext::new(),
                        &ref_pool,
                        stream_query(seq),
                    )
                    .expect("reference run is clean");
                    assert_eq!(served, direct, "seq {seq} diverged from single-shot");
                }
                Err(ServeError::Failed { attempts, .. }) => {
                    assert_eq!(seq, 24, "only seq 24 exhausts its retry budget");
                    assert_eq!(attempts, 4, "2 retries + degraded = 4 attempts");
                }
                Err(ServeError::Expired { .. }) => {
                    assert!(
                        (32..35).contains(&seq),
                        "only the storm span expires, got seq {seq}"
                    );
                }
                Err(other) => panic!("seq {seq}: unexpected disposition {other}"),
            }
        }
    }

    let snap = server.drain();
    assert_eq!(snap.admitted, (WAVES * WAVE_LEN) as u64);
    assert_eq!(snap.completed, (WAVES * WAVE_LEN) as u64 - 4);
    assert_eq!(snap.failed, 1, "seq 24");
    assert_eq!(snap.expired, 3, "storm seqs 32..35");
    assert_eq!(snap.shed_queue + snap.shed_work + snap.shed_draining, 0);
    assert_eq!(snap.panics_absorbed, 2 + 3 + 4);
    assert_eq!(snap.retries, 2 + 3 + 3, "non-final failed attempts");
    assert_eq!(snap.degraded, 2, "seqs 8 and 24 reach the degraded rung");
    assert_eq!(snap.queue_depth, 0, "drain leaves nothing queued");
    snap.render()
}

fn write_stats_artifact(threads: usize, rendering: &str) {
    if let Ok(dir) = std::env::var("GRAZELLE_SOAK_STATS_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create stats dir");
        std::fs::write(dir.join(format!("soak-{threads}.txt")), rendering)
            .expect("write stats artifact");
    }
}

#[test]
fn soak_single_thread() {
    let stats = soak_at(1);
    write_stats_artifact(1, &stats);
}

#[test]
fn soak_two_threads() {
    let stats = soak_at(2);
    write_stats_artifact(2, &stats);
}

#[test]
fn soak_eight_threads() {
    let stats = soak_at(8);
    write_stats_artifact(8, &stats);
}

//! Query vocabulary, typed dispositions, and the single-shot reference
//! execution path.
//!
//! Every query the server completes must be bit-identical to running the
//! same query alone through the resilient engine — so [`single_shot`] *is*
//! that reference path, and the server calls it for its own execution.
//! There is no second implementation to drift.

use grazelle_apps::pagerank::DAMPING;
use grazelle_apps::{
    triangle, Bfs, ConnectedComponents, KCore, LabelProp, PageRank, Reachability, Sssp,
};
use grazelle_core::engine::PreparedGraph;
use grazelle_core::incremental::GraphView;
use grazelle_core::{run_resilient_overlay_on_pool, EngineConfig, EngineError, ResilienceContext};
use grazelle_graph::graph::Graph;
use grazelle_graph::types::VertexId;
use grazelle_sched::pool::ThreadPool;

/// A query the server accepts. Per-query parameters only — engine
/// configuration is server-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// BFS parent tree from `root`.
    Bfs {
        /// Search root.
        root: VertexId,
    },
    /// Single-source shortest paths from `root` (weighted graphs only).
    Sssp {
        /// Search root.
        root: VertexId,
    },
    /// Connected components labelling.
    Cc,
    /// `iterations` rounds of PageRank at the paper's damping factor.
    PageRank {
        /// Power iterations to run.
        iterations: usize,
    },
    /// k-core decomposition (coreness per vertex).
    KCore,
    /// Reachable set from `root` — the packable program: up to 64
    /// reachability queries share one bit-parallel run.
    Reach {
        /// Search root.
        root: VertexId,
    },
    /// Deterministic label-propagation community detection (packed-key
    /// Max lattice ascent, DESIGN.md §16).
    LabelProp,
    /// Triangle count (global + per-vertex) via the masked intersect
    /// kernel. Computed over the base snapshot: pending overlay inserts
    /// are reflected after the next merge rebuild (intersection messages
    /// read base adjacency, unlike the per-edge programs above).
    Triangles,
}

impl Query {
    /// Program name, for stats and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Query::Bfs { .. } => "bfs",
            Query::Sssp { .. } => "sssp",
            Query::Cc => "cc",
            Query::PageRank { .. } => "pagerank",
            Query::KCore => "kcore",
            Query::Reach { .. } => "reach",
            Query::LabelProp => "labelprop",
            Query::Triangles => "triangles",
        }
    }

    /// Whether the server may pack this query with others of the same
    /// program into one bit-parallel run.
    pub fn packable(&self) -> bool {
        matches!(self, Query::Reach { .. })
    }

    /// Deterministic admission-control work estimate, in edge-sweep units:
    /// roughly how many times the query will traverse the edge set. Used
    /// against [`ServeConfig::work_budget`](crate::server::ServeConfig) to
    /// shed load before the queue fills with expensive work.
    pub fn estimated_work(&self, g: &Graph) -> u64 {
        self.estimated_work_for_edges(g.num_edges() as u64)
    }

    /// [`Query::estimated_work`] from an edge count directly — what the
    /// server uses once the graph is versioned and the live edge count is
    /// a counter rather than a `Graph` borrow. Saturating throughout: a
    /// pathological `iterations` must shed as "too much work", never wrap
    /// into a small estimate (or panic the caller in debug builds).
    pub fn estimated_work_for_edges(&self, e: u64) -> u64 {
        match self {
            Query::Reach { .. } => e,
            Query::Bfs { .. } => e,
            Query::Cc | Query::Sssp { .. } => e.saturating_mul(2),
            Query::PageRank { iterations } => e.saturating_mul((*iterations as u64).max(1)),
            // Peeling re-sweeps per threshold bump; budget it generously.
            Query::KCore => e.saturating_mul(8),
            // Floods until every seed's score is spent — a handful of
            // sweeps on community-structured graphs.
            Query::LabelProp => e.saturating_mul(4),
            // One superstep, but each edge pays an adjacency intersection
            // rather than one gather.
            Query::Triangles => e.saturating_mul(8),
        }
    }
}

/// Result payload of a completed query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// BFS: per-vertex parent (`None` = unreached).
    Parents(Vec<Option<VertexId>>),
    /// SSSP: per-vertex distance (`None` = unreached).
    Distances(Vec<Option<f64>>),
    /// CC: per-vertex component label.
    Labels(Vec<u32>),
    /// PageRank: per-vertex rank.
    Ranks(Vec<f64>),
    /// k-core: per-vertex coreness.
    Coreness(Vec<u32>),
    /// Reachability: per-vertex reached bit.
    Reached(Vec<bool>),
    /// Label propagation: per-vertex community label (a seed vertex id).
    Communities(Vec<u32>),
    /// Triangle counting: global count plus per-vertex incidence.
    Triangles {
        /// Global triangle count.
        total: u64,
        /// `t(v)` per vertex.
        per_vertex: Vec<u64>,
    },
    /// Update batch applied to the versioned graph.
    Updated {
        /// Graph version after the batch.
        version: u64,
        /// Edges effectively inserted (duplicates ignored).
        inserted: usize,
        /// Edges effectively deleted (absent edges ignored).
        deleted: usize,
        /// Whether the batch ended in a merge rebuild.
        merged: bool,
    },
}

impl QueryResult {
    /// Short shape summary for logs (`"parents[64]"`).
    pub fn describe(&self) -> String {
        match self {
            QueryResult::Parents(v) => format!("parents[{}]", v.len()),
            QueryResult::Distances(v) => format!("distances[{}]", v.len()),
            QueryResult::Labels(v) => format!("labels[{}]", v.len()),
            QueryResult::Ranks(v) => format!("ranks[{}]", v.len()),
            QueryResult::Coreness(v) => format!("coreness[{}]", v.len()),
            QueryResult::Reached(v) => {
                format!("reached[{}]", v.iter().filter(|&&r| r).count())
            }
            QueryResult::Communities(v) => format!("communities[{}]", v.len()),
            QueryResult::Triangles { total, per_vertex } => {
                format!("triangles[{total} over {}]", per_vertex.len())
            }
            QueryResult::Updated {
                version,
                inserted,
                deleted,
                merged,
            } => {
                format!(
                    "updated[v{version}: +{inserted} -{deleted}{}]",
                    if *merged { " merged" } else { "" }
                )
            }
        }
    }
}

/// Typed disposition of a query that did not complete. The server never
/// panics a caller and never kills itself — every failure mode is one of
/// these.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission refused: accepting the query would exceed the queue
    /// capacity or the queued-work budget. The caller should back off.
    Overloaded {
        /// Queue depth at refusal.
        queue_depth: usize,
        /// Estimated work already queued, in edge-sweep units.
        queued_work: u64,
    },
    /// The query's deadline passed; the run was cancelled cooperatively at
    /// an iteration boundary (`iteration` is where cancellation was
    /// observed — 0 when the deadline had already passed at execution
    /// start).
    Expired {
        /// Iteration boundary where the cancellation was observed.
        iteration: usize,
    },
    /// Every attempt — including the degraded sequential fallback —
    /// failed. `last` describes the final failure.
    Failed {
        /// Attempts consumed (retries + degraded fallback).
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
    /// The server is draining and admits nothing new.
    Draining,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                queued_work,
            } => write!(
                f,
                "overloaded: queue depth {queue_depth}, queued work {queued_work}"
            ),
            ServeError::Expired { iteration } => {
                write!(
                    f,
                    "deadline expired; cancelled before iteration {iteration}"
                )
            }
            ServeError::Failed { attempts, last } => {
                write!(f, "failed after {attempts} attempts: {last}")
            }
            ServeError::Draining => write!(f, "server is draining"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Executes `query` once through the resilient engine on `pool` — the
/// reference the server's completed results are bit-identical to, because
/// the server itself calls this (through [`single_shot_view`] once the
/// graph is versioned).
pub fn single_shot(
    g: &Graph,
    pg: &PreparedGraph,
    cfg: &EngineConfig,
    rctx: &ResilienceContext<'_>,
    pool: &ThreadPool,
    query: Query,
) -> Result<QueryResult, EngineError> {
    let out: Vec<u32> = (0..g.num_vertices() as VertexId)
        .map(|v| g.out_degree(v))
        .collect();
    let inn: Vec<u32> = (0..g.num_vertices() as VertexId)
        .map(|v| g.in_degree(v))
        .collect();
    single_shot_view(&GraphView::plain(g, pg, &out, &inn), cfg, rctx, pool, query)
}

/// [`single_shot`] over a versioned graph's view: the base structures plus
/// the pending-insert overlay. With no overlay this is exactly the plain
/// path (the overlay engine entry points degenerate to the originals);
/// with an overlay, BFS/CC/Reach/SSSP/KCore stay bit-identical to a cold
/// run on the merged graph (min/max fixpoints are edge-order independent)
/// while PageRank agrees to within floating-point summation order.
pub fn single_shot_view(
    view: &GraphView<'_>,
    cfg: &EngineConfig,
    rctx: &ResilienceContext<'_>,
    pool: &ThreadPool,
    query: Query,
) -> Result<QueryResult, EngineError> {
    let n = view.pg.num_vertices;
    let pg = view.pg;
    let delta = view.delta_pg;
    match query {
        Query::Bfs { root } => {
            let prog = Bfs::new(n, root);
            run_resilient_overlay_on_pool(pg, delta, &prog, cfg, rctx, pool)?;
            Ok(QueryResult::Parents(prog.parents()))
        }
        Query::Sssp { root } => {
            let prog = Sssp::new(n, root);
            run_resilient_overlay_on_pool(pg, delta, &prog, cfg, rctx, pool)?;
            Ok(QueryResult::Distances(prog.distances()))
        }
        Query::Cc => {
            let prog = ConnectedComponents::new(n);
            run_resilient_overlay_on_pool(pg, delta, &prog, cfg, rctx, pool)?;
            Ok(QueryResult::Labels(prog.labels()))
        }
        Query::PageRank { iterations } => {
            let mut local = *cfg;
            local.max_iterations = iterations;
            let prog = PageRank::with_out_degrees(view.out_degrees, DAMPING);
            run_resilient_overlay_on_pool(pg, delta, &prog, &local, rctx, pool)?;
            Ok(QueryResult::Ranks(prog.ranks()))
        }
        Query::KCore => {
            let mut local = *cfg;
            // Matches `kcore::run_prepared`: peeling is bounded by one
            // iteration per round plus one per threshold bump.
            local.max_iterations = 2 * n + 64;
            let prog = KCore::with_in_degrees(view.in_degrees);
            run_resilient_overlay_on_pool(pg, delta, &prog, &local, rctx, pool)?;
            Ok(QueryResult::Coreness(prog.coreness()))
        }
        Query::Reach { root } => {
            let prog = Reachability::new(n, root);
            run_resilient_overlay_on_pool(pg, delta, &prog, cfg, rctx, pool)?;
            Ok(QueryResult::Reached(prog.reached()))
        }
        Query::LabelProp => {
            let mut local = *cfg;
            // Propagation distance is bounded by the largest seed score,
            // itself bounded by the vertex count.
            local.max_iterations = n + 1;
            let prog = LabelProp::with_out_degrees(view.out_degrees);
            run_resilient_overlay_on_pool(pg, delta, &prog, &local, rctx, pool)?;
            Ok(QueryResult::Communities(prog.labels()))
        }
        Query::Triangles => {
            // Kernel-level single superstep over the base snapshot (see
            // the variant's doc for the overlay caveat).
            let counts = triangle::counts_resilient(view.graph, pg, cfg, rctx, pool)?;
            Ok(QueryResult::Triangles {
                total: counts.total,
                per_vertex: counts.per_vertex,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_graph::edgelist::EdgeList;

    fn small() -> (Graph, PreparedGraph) {
        let el = EdgeList::from_pairs(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (0, 6)]).unwrap();
        let g = Graph::from_edgelist(&el).unwrap();
        let pg = PreparedGraph::new(&g);
        (g, pg)
    }

    #[test]
    fn single_shot_matches_the_plain_app_entry_points() {
        let (g, pg) = small();
        let cfg = EngineConfig::new().with_threads(2);
        let pool = ThreadPool::single_group(2);
        let rctx = ResilienceContext::new();

        let r = single_shot(&g, &pg, &cfg, &rctx, &pool, Query::Bfs { root: 0 }).unwrap();
        assert_eq!(
            r,
            QueryResult::Parents(grazelle_apps::bfs::run(&g, &cfg, 0))
        );
        let r = single_shot(&g, &pg, &cfg, &rctx, &pool, Query::Cc).unwrap();
        assert_eq!(r, QueryResult::Labels(grazelle_apps::cc::run(&g, &cfg)));
        let r = single_shot(&g, &pg, &cfg, &rctx, &pool, Query::Reach { root: 0 }).unwrap();
        assert_eq!(
            r,
            QueryResult::Reached(grazelle_apps::reach::run(&g, &cfg, 0))
        );
        let r = single_shot(
            &g,
            &pg,
            &cfg,
            &rctx,
            &pool,
            Query::PageRank { iterations: 5 },
        )
        .unwrap();
        assert_eq!(
            r,
            QueryResult::Ranks(grazelle_apps::pagerank::run(&g, &cfg, 5))
        );
        let r = single_shot(&g, &pg, &cfg, &rctx, &pool, Query::LabelProp).unwrap();
        assert_eq!(
            r,
            QueryResult::Communities(grazelle_apps::labelprop::run(&g, &cfg))
        );
        let want = grazelle_apps::triangle::reference(&g);
        let r = single_shot(&g, &pg, &cfg, &rctx, &pool, Query::Triangles).unwrap();
        assert_eq!(
            r,
            QueryResult::Triangles {
                total: want.total,
                per_vertex: want.per_vertex,
            }
        );
    }

    #[test]
    fn work_estimates_scale_with_the_program() {
        let (g, _) = small();
        let e = g.num_edges() as u64;
        assert_eq!(Query::Reach { root: 0 }.estimated_work(&g), e);
        assert_eq!(
            Query::PageRank { iterations: 10 }.estimated_work(&g),
            10 * e
        );
        assert!(Query::KCore.estimated_work(&g) > Query::Cc.estimated_work(&g));
        assert!(Query::Triangles.estimated_work(&g) > Query::LabelProp.estimated_work(&g));
        assert_eq!(Query::LabelProp.estimated_work(&g), 4 * e);
    }

    #[test]
    fn work_estimates_saturate_instead_of_wrapping() {
        let (g, _) = small();
        // A pathological iteration count must clamp to u64::MAX (and be
        // shed by any finite budget), not wrap into a tiny estimate.
        let q = Query::PageRank {
            iterations: usize::MAX,
        };
        assert_eq!(q.estimated_work(&g), u64::MAX);
        assert_eq!(Query::Cc.estimated_work_for_edges(u64::MAX), u64::MAX);
        assert_eq!(
            Query::KCore.estimated_work_for_edges(u64::MAX / 2),
            u64::MAX
        );
    }

    #[test]
    fn only_reach_is_packable() {
        assert!(Query::Reach { root: 0 }.packable());
        assert!(!Query::Bfs { root: 0 }.packable());
        assert!(!Query::Cc.packable());
        assert!(!Query::PageRank { iterations: 1 }.packable());
    }

    #[test]
    fn errors_render() {
        let s = ServeError::Overloaded {
            queue_depth: 9,
            queued_work: 77,
        }
        .to_string();
        assert!(s.contains("overloaded") && s.contains('9'));
        assert!(ServeError::Draining.to_string().contains("draining"));
        assert!(ServeError::Expired { iteration: 3 }
            .to_string()
            .contains('3'));
    }
}

//! `grazelle-serve` — load a graph once, serve queries until told to stop.
//!
//! ```text
//! grazelle-serve [--edges FILE | --synthetic N] [--threads T]
//!                [--queue CAP] [--deadline-ms D]
//!                [--stats-addr HOST:PORT] [--snapshot FILE]
//! ```
//!
//! Queries arrive as lines on stdin:
//!
//! ```text
//! bfs <root> | sssp <root> | cc | pagerank <iters> | kcore | reach <root>
//! labelprop | triangles
//! update <src> <dst> [...] | delete <src> <dst> [...]
//! stats | drain | quit
//! ```
//!
//! `update`/`delete` lines carry one batch of edge pairs through the same
//! bounded admission path as queries; the executor applies them in
//! admission order (DESIGN.md §15), so a query submitted after an update
//! sees the updated graph.
//!
//! `SIGTERM` (and `drain`/`quit`/EOF) triggers a graceful drain: admission
//! stops, queued queries finish or expire, the final `GRZCKPT1` stats
//! snapshot is written (when `--snapshot` is set), and the process exits 0.

use grazelle_core::{prepare_profiled, EngineConfig};
use grazelle_graph::delta::UpdateBatch;
use grazelle_graph::io::load_text_parallel;
use grazelle_sched::pool::ThreadPool;
use grazelle_serve::{Query, ServeConfig, Server, StatsEndpoint};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Set by the SIGTERM handler; the command loop polls it.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm() {
    use std::os::raw::c_int;
    const SIGTERM: c_int = 15;
    extern "C" fn on_term(_sig: c_int) {
        // Only async-signal-safe work here: set the flag, nothing else.
        // ATOMIC: relaxed-flag — SIGTERM latch polled by the command loop
        TERM.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    // SAFETY: `signal` registers an async-signal-safe handler (a single
    // relaxed atomic store) for SIGTERM; no Rust state is touched from the
    // signal context and the handler never unwinds.
    unsafe {
        signal(SIGTERM, on_term);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

struct Args {
    edges: Option<String>,
    synthetic: usize,
    threads: usize,
    queue: usize,
    deadline_ms: Option<u64>,
    stats_addr: Option<String>,
    snapshot: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        edges: None,
        synthetic: 4096,
        threads: EngineConfig::new().threads,
        queue: 128,
        deadline_ms: None,
        stats_addr: None,
        snapshot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--edges" => args.edges = Some(val("--edges")?),
            "--synthetic" => {
                args.synthetic = val("--synthetic")?
                    .parse()
                    .map_err(|e| format!("--synthetic: {e}"))?
            }
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--queue" => {
                args.queue = val("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    val("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--stats-addr" => args.stats_addr = Some(val("--stats-addr")?),
            "--snapshot" => args.snapshot = Some(val("--snapshot")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic ring-with-skips digraph for `--synthetic`.
fn synthetic_edges(n: usize) -> grazelle_graph::edgelist::EdgeList {
    let mut el = grazelle_graph::edgelist::EdgeList::new(n);
    for v in 0..n as u32 {
        el.push(v, (v + 1) % n as u32).expect("in range");
        if v % 3 == 0 {
            el.push(v, (v * 7 + 2) % n as u32).expect("in range");
        }
    }
    el
}

/// `update`/`delete` lines: the rest of the line is `<src> <dst>` pairs.
fn parse_batch(cmd: &str, parts: &mut dyn Iterator<Item = &str>) -> Result<UpdateBatch, String> {
    let nums: Vec<u32> = parts
        .map(|t| t.parse().map_err(|e| format!("bad vertex '{t}': {e}")))
        .collect::<Result<_, _>>()?;
    if nums.is_empty() || !nums.len().is_multiple_of(2) {
        return Err(format!("{cmd} needs one or more <src> <dst> pairs"));
    }
    let mut batch = UpdateBatch::new();
    for pair in nums.chunks(2) {
        if cmd == "update" {
            batch.insert(pair[0], pair[1]);
        } else {
            batch.delete(pair[0], pair[1]);
        }
    }
    Ok(batch)
}

fn parse_query(line: &str) -> Result<Option<Query>, String> {
    let mut parts = line.split_whitespace();
    let Some(cmd) = parts.next() else {
        return Ok(None);
    };
    let root = |p: &mut dyn Iterator<Item = &str>| -> Result<u32, String> {
        p.next()
            .ok_or("missing <root>".to_string())?
            .parse()
            .map_err(|e| format!("bad root: {e}"))
    };
    let q = match cmd {
        "bfs" => Query::Bfs {
            root: root(&mut parts)?,
        },
        "sssp" => Query::Sssp {
            root: root(&mut parts)?,
        },
        "cc" => Query::Cc,
        "pagerank" => Query::PageRank {
            iterations: parts
                .next()
                .ok_or("missing <iters>".to_string())?
                .parse()
                .map_err(|e| format!("bad iters: {e}"))?,
        },
        "kcore" => Query::KCore,
        "reach" => Query::Reach {
            root: root(&mut parts)?,
        },
        "labelprop" => Query::LabelProp,
        "triangles" => Query::Triangles,
        other => return Err(format!("unknown command {other}")),
    };
    Ok(Some(q))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("grazelle-serve: {e}");
            std::process::exit(2);
        }
    };
    install_sigterm();

    let pool = ThreadPool::single_group(args.threads.max(1));
    let el = match &args.edges {
        Some(path) => match load_text_parallel(path, &pool) {
            Ok(el) => el,
            Err(e) => {
                eprintln!("grazelle-serve: {path}: {e}");
                std::process::exit(1);
            }
        },
        None => synthetic_edges(args.synthetic.max(2)),
    };
    // The size-adaptive build: small graphs prepare sequentially even on a
    // wide pool, big ones at pool width.
    let (graph, pg, profile) = match prepare_profiled(&el, &pool) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("grazelle-serve: prepare: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "grazelle-serve: {} vertices, {} edges, built at {} thread(s)",
        graph.num_vertices(),
        graph.num_edges(),
        profile.threads
    );
    let graph = Arc::new(graph);
    let pg = Arc::new(pg);

    let cfg = ServeConfig::new()
        .with_engine(EngineConfig::new().with_threads(args.threads.max(1)))
        .with_queue_capacity(args.queue)
        .with_default_deadline(args.deadline_ms.map(Duration::from_millis))
        .with_snapshot_path(args.snapshot.as_ref().map(Into::into));
    let server = Server::start(Arc::clone(&graph), Arc::clone(&pg), cfg);

    let endpoint = args.stats_addr.as_ref().map(|addr| {
        match StatsEndpoint::bind(addr, server.stats_handle()) {
            Ok(ep) => {
                eprintln!("grazelle-serve: stats on {}", ep.local_addr());
                ep
            }
            Err(e) => {
                eprintln!("grazelle-serve: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        }
    });

    // stdin arrives via a reader thread so the command loop can poll the
    // SIGTERM latch between lines (a blocked read_line would swallow the
    // EINTR the signal causes).
    let (line_tx, line_rx) = mpsc::channel::<String>();
    std::thread::Builder::new()
        .name("grazelle-serve-stdin".to_string())
        .spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) | Err(_) => return, // EOF → channel closes → drain
                    Ok(_) => {
                        if line_tx.send(line.trim().to_string()).is_err() {
                            return;
                        }
                    }
                }
            }
        })
        .expect("spawn stdin reader");

    loop {
        // ATOMIC: relaxed-flag — SIGTERM latch; one poll interval of
        // latency is the contract
        if TERM.load(Ordering::Relaxed) {
            eprintln!("grazelle-serve: SIGTERM, draining");
            break;
        }
        let line = match line_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(l) => l,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        match line.as_str() {
            "" => continue,
            "stats" => print!("{}", server.stats().render()),
            "drain" | "quit" | "exit" => break,
            _ if line.starts_with("update ") || line.starts_with("delete ") => {
                let mut parts = line.split_whitespace();
                let cmd = parts.next().expect("non-empty").to_string();
                match parse_batch(&cmd, &mut parts) {
                    Ok(batch) => match server.submit_update(batch) {
                        Ok(ticket) => {
                            let seq = ticket.seq();
                            match ticket.wait() {
                                Ok(res) => println!("ok {cmd} seq={seq} {}", res.describe()),
                                Err(e) => println!("error {cmd} seq={seq}: {e}"),
                            }
                        }
                        Err(e) => println!("error {cmd}: {e}"),
                    },
                    Err(e) => println!("error: {e}"),
                }
            }
            _ => match parse_query(&line) {
                Ok(Some(q)) => match server.submit(q) {
                    Ok(ticket) => {
                        let seq = ticket.seq();
                        match ticket.wait() {
                            Ok(res) => println!("ok {} seq={} {}", q.name(), seq, res.describe()),
                            Err(e) => println!("error {} seq={}: {e}", q.name(), seq),
                        }
                    }
                    Err(e) => println!("error {}: {e}", q.name()),
                },
                Ok(None) => {}
                Err(e) => println!("error: {e}"),
            },
        }
    }

    let snap = server.drain();
    if let Some(ep) = endpoint {
        ep.shutdown();
    }
    print!("{}", snap.render());
}

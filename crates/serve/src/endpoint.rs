//! Plain-text health/stats endpoint.
//!
//! One nonblocking TCP listener on its own thread: every connection gets
//! the current [`StatsSnapshot`] rendering and is closed. No protocol, no
//! framing, no request parsing — `nc host port` is the whole client. The
//! endpoint is deliberately independent of the server's lifecycle so an
//! operator can still read stats while the server drains.

use crate::server::StatsHandle;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running stats endpoint; dropping it stops the listener thread.
pub struct StatsEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsEndpoint {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving
    /// `stats.snapshot().render()` to every connection.
    pub fn bind(addr: &str, stats: StatsHandle) -> std::io::Result<StatsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("grazelle-serve-stats".to_string())
            .spawn(move || {
                // ATOMIC: relaxed-flag — endpoint stop latch; a late
                // observation only delays listener exit by one poll tick
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut conn, _)) => {
                            // A slow or dead client only loses its own
                            // response; the endpoint moves on.
                            let _ = conn.set_nodelay(true);
                            let _ = conn.write_all(stats.snapshot().render().as_bytes());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })
            .expect("spawn stats endpoint");
        Ok(StatsEndpoint {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ATOMIC: relaxed-flag — endpoint stop latch
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsEndpoint {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::server::{ServeConfig, Server};
    use grazelle_core::engine::PreparedGraph;
    use grazelle_core::EngineConfig;
    use grazelle_graph::edgelist::EdgeList;
    use grazelle_graph::graph::Graph;
    use std::io::Read;
    use std::net::TcpStream;

    #[test]
    fn endpoint_serves_current_stats_text() {
        let el = EdgeList::from_pairs(16, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        let g = Arc::new(Graph::from_edgelist(&el).unwrap());
        let pg = Arc::new(PreparedGraph::new(&g));
        let server = Server::start(
            g,
            pg,
            ServeConfig::new().with_engine(EngineConfig::new().with_threads(1)),
        );
        let endpoint = StatsEndpoint::bind("127.0.0.1:0", server.stats_handle()).unwrap();
        server.submit(Query::Cc).unwrap().wait().unwrap();

        let mut conn = TcpStream::connect(endpoint.local_addr()).unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("grazelle-serve stats"), "{text}");
        assert!(text.contains("completed: 1"), "{text}");
        assert!(text.contains("queue_depth:"), "{text}");

        endpoint.shutdown();
        drop(server);
    }
}

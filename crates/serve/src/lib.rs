//! The Grazelle serving layer: long-running, batched, overload-safe query
//! execution over one loaded graph (DESIGN.md §14).
//!
//! A [`Server`] loads nothing itself — it is started over an already-built
//! [`Graph`](grazelle_graph::graph::Graph) +
//! [`PreparedGraph`](grazelle_core::engine::PreparedGraph) and executes
//! [`Query`]s against them on the grazelle-sched pool, with the
//! robustness properties a serving process needs and a one-shot run does
//! not:
//!
//! * **Bounded admission** — a capacity-limited queue plus an
//!   estimated-work budget; load beyond either is shed *immediately* with
//!   a typed [`ServeError::Overloaded`], never buffered without bound.
//! * **Batch formation** — up to 64 reachability queries pack into one
//!   bit-parallel [`multi_source_reach`](grazelle_apps::multi) run, one
//!   edge-set traversal answering the whole batch.
//! * **Deadlines** — per-query, enforced by cooperative cancellation at
//!   engine iteration boundaries ([`ServeError::Expired`]); nothing is
//!   killed mid-iteration, the pool is never poisoned.
//! * **Containment** — transient failures (including executor panics)
//!   retry with deterministic jittered backoff under ingestion's
//!   [`RetryPolicy`](grazelle_graph::faults::RetryPolicy) vocabulary,
//!   then degrade to a sequential-scalar attempt, then report
//!   [`ServeError::Failed`]. The server process survives everything the
//!   fault plan can express.
//! * **Graceful lifecycle** — [`Server::drain`] stops admission, finishes
//!   or expires in-flight work, and writes a final `GRZCKPT1`-anchored
//!   stats snapshot; [`StatsEndpoint`] serves plain-text health/stats over
//!   TCP throughout.
//!
//! Fault injection is first-class: a
//! [`ServeFaultPlan`](grazelle_core::faults::ServeFaultPlan) pins
//! admission stalls, per-query panics, and deadline storms to admission
//! sequence numbers, so a soak run replays deterministically.
//!
//! Completed queries are **bit-identical** to single-shot
//! [`run_resilient`](grazelle_core::run_resilient) executions of the same
//! query: the server's executor calls the same [`single_shot`] path the
//! tests compare against.

pub mod endpoint;
pub mod query;
pub mod server;
pub mod stats;

pub use endpoint::StatsEndpoint;
pub use query::{single_shot, Query, QueryResult, ServeError};
pub use server::{QueryOutcome, ServeConfig, Server, StatsHandle, Ticket};
pub use stats::StatsSnapshot;

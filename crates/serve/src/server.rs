//! The server: bounded admission, batch formation, deadline enforcement,
//! retry-with-backoff, graceful degradation, and drain.
//!
//! # Threading model
//!
//! Three kinds of thread touch a [`Server`]:
//!
//! * **Callers** run admission control inside [`Server::submit`] on their
//!   own thread: sequence assignment, load shedding, enqueue, condvar
//!   notify. A refused query never blocks — it returns a typed
//!   [`ServeError`] immediately.
//! * **One executor thread** owns both engine pools (the configured-width
//!   pool and the 1-thread scalar degraded pool). It dequeues, packs
//!   same-program queries into bit-parallel runs, and executes everything
//!   through [`single_shot`] / [`multi_source_reach`] so completed results
//!   are bit-identical to standalone runs. Executor panics (injected or
//!   otherwise) are caught per attempt; the thread never dies with queries
//!   outstanding.
//! * **One monitor thread** wakes every 200µs and sets the in-flight run's
//!   [`CancelFlag`] once its deadline passes. The engine observes the flag
//!   at the next iteration boundary and returns
//!   [`EngineError::Cancelled`], which the executor reports as
//!   [`ServeError::Expired`]. Nothing is ever killed mid-iteration.
//!
//! All shared state sits behind two mutexes (queue, stats) plus two
//! cooperative flags (draining, monitor-stop). The flags are
//! relaxed-ordering by design: observing either late only delays the
//! reaction, it never corrupts state, because every data handoff goes
//! through the mutexes.

use crate::query::{single_shot_view, Query, QueryResult, ServeError};
use crate::stats::{StatsInner, StatsSnapshot};
use grazelle_apps::multi::{multi_source_reach, MAX_LANES};
use grazelle_core::engine::PreparedGraph;
use grazelle_core::{
    CancelFlag, Checkpoint, EngineConfig, EngineError, ExecInjector, Frontier, PropertyArray,
    ResilienceContext, ServeInjector, SpanClock, VersionedGraph,
};
use grazelle_graph::delta::UpdateBatch;
use grazelle_graph::faults::RetryPolicy;
use grazelle_graph::graph::Graph;
use grazelle_sched::pool::ThreadPool;
use grazelle_vsparse::simd::SimdLevel;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the deadline monitor polls the in-flight run.
const MONITOR_TICK: Duration = Duration::from_micros(200);

/// How long the executor sleeps on an empty queue before rechecking the
/// drain flag.
const IDLE_WAIT: Duration = Duration::from_millis(20);

/// Server configuration. Engine settings apply to every query; admission
/// and retry knobs govern the serving layer itself.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum queued (admitted, not yet executing) queries; admissions
    /// beyond it are shed with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum estimated work (edge-sweep units, see
    /// [`Query::estimated_work`]) the queue may hold; `u64::MAX` disables
    /// the budget.
    pub work_budget: u64,
    /// Deadline applied by [`Server::submit`]; `None` = no deadline. The
    /// clock starts at admission, so queue wait counts against it.
    pub default_deadline: Option<Duration>,
    /// Retry budget and base backoff for transient failures, shared with
    /// ingestion's retry vocabulary.
    pub retry: RetryPolicy,
    /// Engine configuration for normal (non-degraded) execution.
    pub engine: EngineConfig,
    /// Pack same-program queries into bit-parallel runs.
    pub pack: bool,
    /// Most queries per packed run (clamped to [`MAX_LANES`]).
    pub pack_window: usize,
    /// Seed for the deterministic retry-backoff jitter.
    pub seed: u64,
    /// Where drain writes its final `GRZCKPT1` stats snapshot; `None`
    /// skips the snapshot.
    pub snapshot_path: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults: 128-deep queue, unbounded work budget, no deadline,
    /// ingestion's default retry policy, packing on.
    pub fn new() -> Self {
        ServeConfig {
            queue_capacity: 128,
            work_budget: u64::MAX,
            default_deadline: None,
            retry: RetryPolicy::DEFAULT,
            engine: EngineConfig::new(),
            pack: true,
            pack_window: MAX_LANES,
            seed: 0x5EED_CAFE,
            snapshot_path: None,
        }
    }

    /// Builder: queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Builder: queued-work budget.
    pub fn with_work_budget(mut self, budget: u64) -> Self {
        self.work_budget = budget;
        self
    }

    /// Builder: default per-query deadline.
    pub fn with_default_deadline(mut self, d: Option<Duration>) -> Self {
        self.default_deadline = d;
        self
    }

    /// Builder: retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: packing toggle.
    pub fn with_pack(mut self, pack: bool) -> Self {
        self.pack = pack;
        self
    }

    /// Builder: jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: drain snapshot location.
    pub fn with_snapshot_path(mut self, path: Option<PathBuf>) -> Self {
        self.snapshot_path = path;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// What a [`Ticket`] resolves to.
pub type QueryOutcome = Result<QueryResult, ServeError>;

/// An admitted query's handle: wait on it for the outcome.
#[derive(Debug)]
pub struct Ticket {
    seq: usize,
    rx: mpsc::Receiver<QueryOutcome>,
}

impl Ticket {
    /// Admission sequence number (what fault plans pin to).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Blocks until the query is disposed. A vanished executor (cannot
    /// happen short of process death) reports as a failure, not a panic.
    pub fn wait(self) -> QueryOutcome {
        self.rx.recv().unwrap_or(Err(ServeError::Failed {
            attempts: 0,
            last: "executor disappeared".to_string(),
        }))
    }
}

/// What a caller submitted: a read query, or an update batch to apply to
/// the versioned graph between runs.
enum Request {
    Query(Query),
    Update(UpdateBatch),
}

impl Request {
    fn packable(&self) -> bool {
        matches!(self, Request::Query(q) if q.packable())
    }
}

/// One admitted request waiting for the executor.
struct Pending {
    seq: usize,
    request: Request,
    /// Relative deadline; the absolute expiry is `admitted + deadline`.
    deadline: Option<Duration>,
    admitted: Instant,
    clock: SpanClock,
    /// Work actually charged against the queue budget at admission (can be
    /// less than the raw estimate when the saturating charge clipped at
    /// `u64::MAX`); the dequeue decrement reverses exactly this amount, so
    /// the budget can neither drift nor underflow.
    work: u64,
    tx: mpsc::Sender<QueryOutcome>,
}

/// Queue state under the admission mutex.
#[derive(Default)]
struct QueueState {
    deque: VecDeque<Pending>,
    queued_work: u64,
    next_seq: usize,
}

/// The in-flight run the deadline monitor watches.
struct CurrentRun {
    cancel: Arc<CancelFlag>,
    expires: Option<Instant>,
}

/// State shared by callers, the executor, and the monitor.
struct Shared {
    cfg: ServeConfig,
    /// The versioned graph: base + pending-insert overlay + merge policy.
    /// Only the executor thread takes this lock during execution; callers
    /// never touch it (admission reads the atomics below instead), so
    /// queries and updates serialize on the executor, not on admission.
    versioned: Mutex<VersionedGraph>,
    /// Live logical edge count, mirrored out of the versioned graph so
    /// admission work estimates need no graph lock.
    edge_count: AtomicU64,
    /// Whether a pending-insert overlay is currently active. Gates batch
    /// packing: the packing kernel reads base CSR neighbor lists directly
    /// and would miss overlay edges.
    overlay_active: AtomicBool,
    queue: Mutex<QueueState>,
    cv: Condvar,
    stats: Mutex<StatsInner>,
    current: Mutex<Option<CurrentRun>>,
    draining: AtomicBool,
    monitor_stop: AtomicBool,
    serve_faults: Option<Arc<ServeInjector>>,
    exec_faults: Option<Arc<ExecInjector>>,
}

impl Shared {
    /// The versioned graph, tolerating a poisoned lock: an absorbed panic
    /// during a read-only query run leaves the graph intact, so poisoning
    /// is cleared rather than cascaded into executor death.
    fn graph_state(&self) -> MutexGuard<'_, VersionedGraph> {
        self.versioned
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn snapshot(&self) -> StatsSnapshot {
        let (depth, work) = {
            let q = self.queue.lock().unwrap();
            (q.deque.len(), q.queued_work)
        };
        self.stats.lock().unwrap().snapshot(depth, work)
    }
}

/// Cloneable read-only stats access, safe to hand to the health endpoint.
#[derive(Clone)]
pub struct StatsHandle {
    shared: Arc<Shared>,
}

impl StatsHandle {
    /// Current server statistics.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }
}

/// The serving layer: loads nothing itself — it executes queries against
/// the graph it was started with. See the module docs for the threading
/// model.
pub struct Server {
    shared: Arc<Shared>,
    executor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `graph`/`pg` with no fault injection.
    pub fn start(graph: Arc<Graph>, pg: Arc<PreparedGraph>, cfg: ServeConfig) -> Server {
        Server::start_with_faults(graph, pg, cfg, None, None)
    }

    /// Starts a server with deterministic fault injection: `serve_faults`
    /// drives admission stalls / query panics / deadline storms,
    /// `exec_faults` is threaded into every engine run's
    /// [`ResilienceContext`].
    pub fn start_with_faults(
        graph: Arc<Graph>,
        pg: Arc<PreparedGraph>,
        mut cfg: ServeConfig,
        serve_faults: Option<Arc<ServeInjector>>,
        exec_faults: Option<Arc<ExecInjector>>,
    ) -> Server {
        cfg.pack_window = cfg.pack_window.clamp(1, MAX_LANES);
        let edge_count = AtomicU64::new(graph.num_edges() as u64);
        let shared = Arc::new(Shared {
            cfg,
            versioned: Mutex::new(VersionedGraph::new(graph, pg)),
            edge_count,
            overlay_active: AtomicBool::new(false),
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            current: Mutex::new(None),
            draining: AtomicBool::new(false),
            monitor_stop: AtomicBool::new(false),
            serve_faults,
            exec_faults,
        });
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("grazelle-serve-exec".to_string())
                .spawn(move || executor_loop(&shared))
                .expect("spawn executor")
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("grazelle-serve-mon".to_string())
                .spawn(move || monitor_loop(&shared))
                .expect("spawn monitor")
        };
        Server {
            shared,
            executor: Some(executor),
            monitor: Some(monitor),
        }
    }

    /// Submits `query` under the configured default deadline.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(query, self.shared.cfg.default_deadline)
    }

    /// Submits `query` with an explicit deadline (`None` = none). The
    /// admission sequence number is consumed even when the query is shed,
    /// so fault plans pinned to sequence numbers replay deterministically
    /// regardless of disposition.
    pub fn submit_with_deadline(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        // ATOMIC: relaxed-counter — admission estimate; a stale count only
        // mis-sizes one shed decision by the in-flight batch's edges
        let edges = self.shared.edge_count.load(Ordering::Relaxed);
        let work = query.estimated_work_for_edges(edges);
        self.submit_request(Request::Query(query), deadline, work)
    }

    /// Submits an update batch. The executor applies it to the versioned
    /// graph in admission order — queries admitted before it run against
    /// the old version, queries after it against the new one. Resolves to
    /// [`QueryResult::Updated`]. Updates carry no deadline: once admitted,
    /// an update is never dropped (queries sequenced after it may already
    /// have observed its edges).
    pub fn submit_update(&self, batch: UpdateBatch) -> Result<Ticket, ServeError> {
        // Insert-only batches cost roughly their own size (overlay rebuild);
        // any delete forces a full merge rebuild, so budget an edge sweep.
        let work = if batch.deletes().is_empty() {
            (batch.len() as u64).max(1)
        } else {
            // ATOMIC: relaxed-counter — admission work estimate only
            self.shared.edge_count.load(Ordering::Relaxed)
        };
        self.submit_request(Request::Update(batch), None, work)
    }

    fn submit_request(
        &self,
        request: Request,
        deadline: Option<Duration>,
        work: u64,
    ) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let seq = {
            let mut q = shared.queue.lock().unwrap();
            let seq = q.next_seq;
            q.next_seq += 1;
            seq
        };
        if let Some(stall) = shared
            .serve_faults
            .as_deref()
            .and_then(|f| f.admission_stall(seq))
        {
            // Injected slow client / blocked accept loop: the sleep happens
            // on the caller's thread, outside every lock, so the bounded
            // queue keeps shedding correctly underneath it.
            std::thread::sleep(stall);
        }
        // ATOMIC: relaxed-flag — drain latch; a late observation only
        // admits one more query into a queue the drain will still empty
        if shared.draining.load(Ordering::Relaxed) {
            shared.stats.lock().unwrap().shed_draining += 1;
            return Err(ServeError::Draining);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = shared.queue.lock().unwrap();
            if q.deque.len() >= shared.cfg.queue_capacity {
                let err = ServeError::Overloaded {
                    queue_depth: q.deque.len(),
                    queued_work: q.queued_work,
                };
                drop(q);
                shared.stats.lock().unwrap().shed_queue += 1;
                return Err(err);
            }
            // Saturating charge: the admission check and the stored total
            // use the same clipped sum, and the pending entry remembers the
            // delta actually applied, so the dequeue decrement reverses the
            // charge exactly — no overflow on admit, no drift after.
            let charged_total = q.queued_work.saturating_add(work);
            if charged_total > shared.cfg.work_budget {
                let err = ServeError::Overloaded {
                    queue_depth: q.deque.len(),
                    queued_work: q.queued_work,
                };
                drop(q);
                shared.stats.lock().unwrap().shed_work += 1;
                return Err(err);
            }
            let charged = charged_total - q.queued_work;
            q.queued_work = charged_total;
            q.deque.push_back(Pending {
                seq,
                request,
                deadline,
                admitted: Instant::now(),
                clock: SpanClock::start(),
                work: charged,
                tx,
            });
        }
        shared.stats.lock().unwrap().admitted += 1;
        shared.cv.notify_all();
        Ok(Ticket { seq, rx })
    }

    /// Current queue depth (queries admitted but not yet executing).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().deque.len()
    }

    /// Current statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Cloneable stats access for the health endpoint.
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops admitting queries. In-flight and queued work still completes
    /// (or expires); call [`Server::drain`] to wait for it.
    pub fn begin_drain(&self) {
        // ATOMIC: relaxed-flag — drain latch, observed by submitters and
        // the executor's empty-queue check
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
    }

    /// Graceful shutdown: stop admitting, let queued queries finish or
    /// expire, write the final `GRZCKPT1` stats snapshot (if configured),
    /// and return the closing statistics.
    pub fn drain(mut self) -> StatsSnapshot {
        self.begin_drain();
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        // ATOMIC: relaxed-flag — monitor stop latch
        self.shared.monitor_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let snap = self.shared.snapshot();
        if let Some(path) = &self.shared.cfg.snapshot_path {
            if let Err(e) = write_snapshot(&snap, path) {
                eprintln!("grazelle-serve: final snapshot failed: {e}");
            }
        }
        snap
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_drain();
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        // ATOMIC: relaxed-flag — monitor stop latch
        self.shared.monitor_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

/// Persists the closing stats as a `GRZCKPT1` checkpoint: counters become
/// one f64 property array, so the snapshot round-trips through the same
/// checksummed, fsync-hardened format as engine checkpoints.
fn write_snapshot(snap: &StatsSnapshot, path: &std::path::Path) -> Result<(), String> {
    let fields = [
        snap.admitted,
        snap.completed,
        snap.shed_queue + snap.shed_work + snap.shed_draining,
        snap.expired,
        snap.failed,
        snap.retries,
        snap.degraded,
        snap.packed_runs,
        snap.packed_queries,
        snap.updates_applied,
        snap.merges,
        snap.p50_latency_ns,
        snap.p99_latency_ns,
    ];
    let arr = PropertyArray::new(fields.len());
    for (i, v) in fields.iter().enumerate() {
        arr.set_f64(i, *v as f64);
    }
    let frontier = Frontier::from_vertices(fields.len(), &[]);
    let ck = Checkpoint::capture(snap.completed as usize, &[&arr], &frontier);
    ck.save(path).map_err(|e| e.to_string())
}

/// Deadline monitor: cancels the registered in-flight run once its expiry
/// passes. Polling (rather than a timed wakeup per query) keeps the
/// protocol trivial — worst case a run gets one extra 200µs of grace.
fn monitor_loop(shared: &Shared) {
    // ATOMIC: relaxed-flag — monitor stop latch; a late observation only
    // delays thread exit by one tick
    while !shared.monitor_stop.load(Ordering::Relaxed) {
        {
            let cur = shared.current.lock().unwrap();
            if let Some(run) = cur.as_ref() {
                if run.expires.is_some_and(|t| Instant::now() >= t) {
                    run.cancel.cancel();
                }
            }
        }
        std::thread::sleep(MONITOR_TICK);
    }
}

/// The executor: dequeue → pack → execute → dispose, until drained.
fn executor_loop(shared: &Shared) {
    let pool = ThreadPool::new(shared.cfg.engine.threads, shared.cfg.engine.groups);
    // The degraded path: one thread, scalar kernels. Same results — the
    // engine is bit-identical across widths and SIMD levels — at the
    // lowest-risk operating point.
    let degraded_pool = ThreadPool::single_group(1);
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if !q.deque.is_empty() {
                    break;
                }
                // ATOMIC: relaxed-flag — drain latch; pairs with the
                // notify in begin_drain via the condvar timeout
                if shared.draining.load(Ordering::Relaxed) {
                    return;
                }
                q = shared.cv.wait_timeout(q, IDLE_WAIT).unwrap().0;
            }
            form_batch(shared, &mut q)
        };
        match batch {
            Batch::Single(p) => match p.request {
                Request::Update(_) => apply_update(shared, &pool, p),
                Request::Query(_) => execute_single(shared, &pool, &degraded_pool, p),
            },
            Batch::Packed(members) => execute_packed(shared, &pool, &degraded_pool, members),
        }
    }
}

/// What the executor pulled off the queue this round.
enum Batch {
    Single(Pending),
    Packed(Vec<Pending>),
}

/// Forms the next batch under the queue lock: if the head is packable and
/// packing is on, pull every packable query (up to the window) out of the
/// queue — later non-packable queries keep their order.
fn form_batch(shared: &Shared, q: &mut QueueState) -> Batch {
    let head_packs = q.deque.front().is_some_and(|p| p.request.packable());
    // ATOMIC: relaxed-flag — packing gate; only the executor (this thread)
    // flips it, so the read cannot race an overlay change
    let overlay = shared.overlay_active.load(Ordering::Relaxed);
    if !(shared.cfg.pack && head_packs && !overlay) {
        let p = q.deque.pop_front().expect("checked non-empty");
        q.queued_work = q.queued_work.saturating_sub(p.work);
        return Batch::Single(p);
    }
    let mut members = Vec::new();
    let mut i = 0;
    while i < q.deque.len() && members.len() < shared.cfg.pack_window {
        // A queued update is a version barrier: queries admitted after it
        // must observe its edges, so nothing packs across it.
        if matches!(q.deque[i].request, Request::Update(_)) {
            break;
        }
        if q.deque[i].request.packable() {
            let p = q.deque.remove(i).expect("index in bounds");
            q.queued_work = q.queued_work.saturating_sub(p.work);
            members.push(p);
        } else {
            i += 1;
        }
    }
    if members.len() == 1 {
        Batch::Single(members.pop().expect("one member"))
    } else {
        Batch::Packed(members)
    }
}

/// The query's absolute expiry, folding in an injected deadline storm
/// (which collapses the deadline to "already passed").
fn effective_expiry(shared: &Shared, p: &Pending) -> Option<Instant> {
    let stormed = shared
        .serve_faults
        .as_deref()
        .is_some_and(|f| f.storm_deadline(p.seq));
    if stormed {
        Some(p.admitted)
    } else {
        p.deadline.map(|d| p.admitted + d)
    }
}

/// Registers `cancel`/`expires` as the run the monitor watches, runs `f`,
/// unregisters. Pre-sets the flag when the expiry has already passed, so
/// an already-late query deterministically observes cancellation at
/// iteration 0 instead of racing the monitor.
fn with_monitored_run<R>(
    shared: &Shared,
    cancel: &Arc<CancelFlag>,
    expires: Option<Instant>,
    f: impl FnOnce() -> R,
) -> R {
    if expires.is_some_and(|t| Instant::now() >= t) {
        cancel.cancel();
    }
    *shared.current.lock().unwrap() = Some(CurrentRun {
        cancel: Arc::clone(cancel),
        expires,
    });
    let r = f();
    *shared.current.lock().unwrap() = None;
    r
}

/// xorshift64* step — the deterministic jitter source.
fn xorshift(mut x: u64) -> u64 {
    x |= 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Linear backoff with deterministic jitter: attempt `k` (1-based) sleeps
/// `k * backoff + jitter`, jitter < backoff/2, derived from
/// (seed, seq, attempt) alone so a soak run replays byte-for-byte.
fn backoff_sleep(shared: &Shared, seq: usize, attempt: u32) {
    let base = shared.cfg.retry.backoff;
    if base.is_zero() {
        return;
    }
    let j = xorshift(shared.cfg.seed ^ (seq as u64) << 17 ^ attempt as u64);
    let jitter_ns = j % (base.as_nanos() as u64 / 2).max(1);
    std::thread::sleep(base * (attempt + 1) + Duration::from_nanos(jitter_ns));
}

/// Disposes `p` with `outcome`, updating counters. Send failures (caller
/// dropped the ticket) are fine — the disposition still counts.
fn dispose(shared: &Shared, p: &Pending, outcome: QueryOutcome) {
    let mut stats = shared.stats.lock().unwrap();
    match &outcome {
        Ok(_) => {
            stats.completed += 1;
            stats.record_latency(p.clock.elapsed_ns());
        }
        Err(ServeError::Expired { .. }) => stats.expired += 1,
        Err(ServeError::Failed { .. }) => stats.failed += 1,
        Err(_) => {}
    }
    drop(stats);
    let _ = p.tx.send(outcome);
}

/// Executes one query with the full containment ladder: up to
/// `1 + max_retries` attempts on the configured pool, then one final
/// attempt on the sequential-scalar degraded path. Deadline expiry at any
/// point reports `Expired`; exhausting the ladder reports `Failed`. The
/// executor thread survives everything.
fn execute_single(shared: &Shared, pool: &ThreadPool, degraded_pool: &ThreadPool, p: Pending) {
    let Request::Query(query) = p.request else {
        unreachable!("updates are dispatched to apply_update");
    };
    let expires = effective_expiry(shared, &p);
    let cancel = Arc::new(CancelFlag::new());
    let max_retries = shared.cfg.retry.max_retries;
    let mut last;
    for attempt in 0..=(max_retries + 1) {
        let degraded_attempt = attempt == max_retries + 1;
        let (cfg, run_pool) = if degraded_attempt {
            shared.stats.lock().unwrap().degraded += 1;
            (
                shared
                    .cfg
                    .engine
                    .with_threads(1)
                    .with_simd(SimdLevel::Scalar),
                degraded_pool,
            )
        } else {
            (shared.cfg.engine, pool)
        };
        let result = with_monitored_run(shared, &cancel, expires, || {
            // RECOVERY: a panic crossing this boundary leaves no shared
            // state behind — injected query panics fire before the engine
            // starts, engine worker panics are absorbed inside
            // `run_resilient` (§9) and surface as `EngineError`, and every
            // attempt allocates its own property arrays inside
            // `single_shot` over the immutable graph. The attempt's outputs
            // are discarded wholesale and the retry ladder re-runs from
            // scratch on intact inputs.
            panic::catch_unwind(AssertUnwindSafe(|| {
                if let Some(f) = shared.serve_faults.as_deref() {
                    f.maybe_panic_query(p.seq);
                }
                let mut rctx = ResilienceContext::new().with_cancel(&cancel);
                if let Some(x) = shared.exec_faults.as_deref() {
                    rctx = rctx.with_injector(x);
                }
                let vg = shared.graph_state();
                single_shot_view(&vg.view(), &cfg, &rctx, run_pool, query)
            }))
        });
        match result {
            Ok(Ok(res)) => {
                dispose(shared, &p, Ok(res));
                return;
            }
            Ok(Err(EngineError::Cancelled { iteration })) => {
                dispose(shared, &p, Err(ServeError::Expired { iteration }));
                return;
            }
            Ok(Err(e)) => last = e.to_string(),
            Err(_) => {
                shared.stats.lock().unwrap().panics_absorbed += 1;
                last = "executor panic (absorbed)".to_string();
            }
        }
        if degraded_attempt {
            dispose(
                shared,
                &p,
                Err(ServeError::Failed {
                    attempts: attempt + 1,
                    last,
                }),
            );
            return;
        }
        // A deadline that lapsed during the failed attempt means the retry
        // would be cancelled at iteration 0 anyway; report it now.
        if expires.is_some_and(|t| Instant::now() >= t) {
            dispose(shared, &p, Err(ServeError::Expired { iteration: 0 }));
            return;
        }
        shared.stats.lock().unwrap().retries += 1;
        backoff_sleep(shared, p.seq, attempt);
    }
    unreachable!("loop always disposes");
}

/// Applies one update batch to the versioned graph, between engine runs.
/// The executor thread is the only mutator, so queries admitted before the
/// update ran against the old version and queries after it will see the
/// new one. A rejected batch (endpoint out of range, weighted base)
/// changes nothing and reports `Failed`; there is no retry ladder —
/// validation is deterministic, so retrying cannot change the outcome.
fn apply_update(shared: &Shared, pool: &ThreadPool, p: Pending) {
    let Request::Update(batch) = &p.request else {
        unreachable!("queries are dispatched to execute_single");
    };
    let mut vg = shared.graph_state();
    let result = vg.apply_batch(batch, pool);
    let edges = vg.num_edges() as u64;
    let overlay = vg.delta_active();
    drop(vg);
    // ATOMIC: relaxed-counter — admission estimate mirror
    shared.edge_count.store(edges, Ordering::Relaxed);
    // ATOMIC: relaxed-flag — packing gate; written only by this thread and
    // read by it again in form_batch, so ordering is program order
    shared.overlay_active.store(overlay, Ordering::Relaxed);
    match result {
        Ok(report) => {
            let mut stats = shared.stats.lock().unwrap();
            stats.updates_applied += 1;
            if report.merged {
                stats.merges += 1;
            }
            drop(stats);
            dispose(
                shared,
                &p,
                Ok(QueryResult::Updated {
                    version: report.version,
                    inserted: report.record.inserted.len(),
                    deleted: report.record.deleted.len(),
                    merged: report.merged,
                }),
            );
        }
        Err(e) => {
            dispose(
                shared,
                &p,
                Err(ServeError::Failed {
                    attempts: 1,
                    last: format!("update rejected: {e}"),
                }),
            );
        }
    }
}

/// Executes a packed batch of reachability queries as one bit-parallel
/// run. Cancellation uses the earliest member deadline; on cancellation or
/// panic, expired members are reported and survivors fall back to the
/// individual path (with their panic budgets already part-consumed, as the
/// fault plan intends).
fn execute_packed(
    shared: &Shared,
    pool: &ThreadPool,
    degraded_pool: &ThreadPool,
    members: Vec<Pending>,
) {
    // Members already past their deadline never enter the pack: they are
    // disposed Expired at iteration 0, exactly like a pre-cancelled run.
    let now = Instant::now();
    let mut live = Vec::new();
    for p in members {
        if effective_expiry(shared, &p).is_some_and(|t| now >= t) {
            dispose(shared, &p, Err(ServeError::Expired { iteration: 0 }));
        } else {
            live.push(p);
        }
    }
    match live.len() {
        0 => return,
        1 => {
            let p = live.pop().expect("one member");
            return execute_single(shared, pool, degraded_pool, p);
        }
        _ => {}
    }
    let roots: Vec<_> = live
        .iter()
        .map(|p| match p.request {
            Request::Query(Query::Reach { root }) => root,
            _ => unreachable!("only Reach packs"),
        })
        .collect();
    let expires = live
        .iter()
        .filter_map(|p| effective_expiry(shared, p))
        .min();
    let cancel = Arc::new(CancelFlag::new());
    let result = with_monitored_run(shared, &cancel, expires, || {
        // RECOVERY: the packed run's masks and frontier are owned by
        // `multi_source_reach` and die with the unwind; the graph is
        // immutable and injected member panics fire before the traversal
        // starts. On catch, every member falls back to the individual
        // path (panic budgets part-consumed, as the fault plan intends)
        // and re-runs from intact inputs.
        panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = shared.serve_faults.as_deref() {
                for p in &live {
                    f.maybe_panic_query(p.seq);
                }
            }
            // Packing only forms while no overlay is active (form_batch
            // gates on the flag, and only this thread changes it), so the
            // base graph IS the full logical graph here.
            let vg = shared.graph_state();
            multi_source_reach(vg.base(), &roots, pool, Some(&cancel))
        }))
    });
    match result {
        Ok(Some(mr)) => {
            let mut stats = shared.stats.lock().unwrap();
            stats.packed_runs += 1;
            stats.packed_queries += live.len() as u64;
            drop(stats);
            for (lane, p) in live.iter().enumerate() {
                dispose(shared, p, Ok(QueryResult::Reached(mr.reached(lane))));
            }
        }
        Ok(None) | Err(_) => {
            if result.is_err() {
                shared.stats.lock().unwrap().panics_absorbed += 1;
            }
            // Pack attempt died (deadline hit the batch, or an injected
            // panic): expired members report, survivors run individually.
            for p in live {
                execute_single(shared, pool, degraded_pool, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::single_shot;
    use grazelle_core::faults::ServeFaultPlan;
    use grazelle_graph::edgelist::EdgeList;

    fn serve_graph(n: usize) -> (Arc<Graph>, Arc<PreparedGraph>) {
        let mut el = EdgeList::new(n);
        for v in 0..n as u32 {
            if (v as usize) + 1 < n {
                el.push(v, v + 1).unwrap();
            }
            if v % 3 == 0 {
                el.push(v, (v * 7 + 2) % n as u32).unwrap();
            }
        }
        let g = Graph::from_edgelist(&el).unwrap();
        let pg = PreparedGraph::new(&g);
        (Arc::new(g), Arc::new(pg))
    }

    fn quick_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_micros(50),
        }
    }

    fn base_cfg() -> ServeConfig {
        ServeConfig::new()
            .with_engine(EngineConfig::new().with_threads(2))
            .with_retry(quick_retry())
    }

    #[test]
    fn completed_queries_match_single_shot() {
        let (g, pg) = serve_graph(64);
        let server = Server::start(Arc::clone(&g), Arc::clone(&pg), base_cfg());
        let t1 = server.submit(Query::Bfs { root: 0 }).unwrap();
        let t2 = server.submit(Query::Cc).unwrap();
        let t3 = server.submit(Query::PageRank { iterations: 4 }).unwrap();
        let cfg = EngineConfig::new().with_threads(2);
        let rctx = ResilienceContext::new();
        let pool = ThreadPool::single_group(2);
        for (t, q) in [
            (t1, Query::Bfs { root: 0 }),
            (t2, Query::Cc),
            (t3, Query::PageRank { iterations: 4 }),
        ] {
            let served = t.wait().expect("clean run completes");
            let direct = single_shot(&g, &pg, &cfg, &rctx, &pool, q).unwrap();
            assert_eq!(served, direct, "{}", q.name());
        }
        let snap = server.drain();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.failed + snap.expired, 0);
    }

    #[test]
    fn draining_server_sheds_with_typed_error() {
        let (g, pg) = serve_graph(16);
        let server = Server::start(g, pg, base_cfg());
        server.begin_drain();
        match server.submit(Query::Cc) {
            Err(ServeError::Draining) => {}
            other => panic!("expected Draining, got {other:?}"),
        }
        let snap = server.drain();
        assert_eq!(snap.shed_draining, 1);
        assert_eq!(snap.admitted, 0);
    }

    #[test]
    fn queue_overflow_sheds_overloaded() {
        let (g, pg) = serve_graph(32);
        // Occupy the executor: query 0 panics twice with a long backoff,
        // so subsequent admissions pile into the 1-deep queue.
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean().with_query_panic(0, 2),
        ));
        let cfg = base_cfg().with_queue_capacity(1).with_retry(RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(60),
        });
        let server = Server::start_with_faults(g, pg, cfg, Some(faults), None);
        let t0 = server.submit(Query::Cc).unwrap();
        // Give the executor time to dequeue query 0 and hit the first
        // injected panic (it then sleeps ≥60ms in backoff).
        std::thread::sleep(Duration::from_millis(20));
        let t1 = server.submit(Query::Cc).unwrap();
        let mut shed = 0;
        let mut tickets = vec![t0, t1];
        for _ in 0..4 {
            match server.submit(Query::Cc) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(shed >= 1, "1-deep queue must shed under a busy executor");
        for t in tickets {
            t.wait().expect("queued queries complete after recovery");
        }
        let snap = server.drain();
        assert!(snap.shed_queue >= 1);
        assert_eq!(snap.panics_absorbed, 2);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn work_budget_sheds_expensive_queries() {
        let (g, pg) = serve_graph(32);
        let edges = g.num_edges() as u64;
        // Budget fits one CC (2·edges) but not two.
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean().with_query_panic(0, 1),
        ));
        let cfg = base_cfg()
            .with_work_budget(3 * edges)
            .with_retry(RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_millis(60),
            });
        let server = Server::start_with_faults(g, pg, cfg, Some(faults), None);
        let t0 = server.submit(Query::Cc).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let t1 = server.submit(Query::Cc).unwrap();
        match server.submit(Query::Cc) {
            Err(ServeError::Overloaded { queued_work, .. }) => {
                assert_eq!(queued_work, 2 * edges);
            }
            other => panic!("expected work-budget shed, got {other:?}"),
        }
        t0.wait().unwrap();
        t1.wait().unwrap();
        assert_eq!(server.stats().shed_work, 1);
        drop(server);
    }

    #[test]
    fn zero_deadline_expires_at_iteration_zero() {
        let (g, pg) = serve_graph(64);
        let server = Server::start(g, pg, base_cfg());
        let t = server
            .submit_with_deadline(Query::Bfs { root: 0 }, Some(Duration::ZERO))
            .unwrap();
        match t.wait() {
            Err(ServeError::Expired { iteration }) => assert_eq!(iteration, 0),
            other => panic!("expected Expired, got {other:?}"),
        }
        let snap = server.drain();
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn deadline_storm_fault_expires_exactly_its_span() {
        let (g, pg) = serve_graph(64);
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean().with_deadline_storm(1, 2),
        ));
        let server = Server::start_with_faults(g, pg, base_cfg(), Some(faults), None);
        let outcomes: Vec<_> = (0..4)
            .map(|i| server.submit(Query::Bfs { root: i }).unwrap())
            .map(|t| t.wait())
            .collect();
        assert!(outcomes[0].is_ok());
        assert!(matches!(outcomes[1], Err(ServeError::Expired { .. })));
        assert!(matches!(outcomes[2], Err(ServeError::Expired { .. })));
        assert!(outcomes[3].is_ok());
        let snap = server.drain();
        assert_eq!(snap.expired, 2);
        assert_eq!(snap.completed, 2);
    }

    #[test]
    fn retry_ladder_degrades_then_fails_typed() {
        let (g, pg) = serve_graph(32);
        // max_retries=1 → attempts: normal, normal, degraded. 3 injected
        // failures exhaust the ladder → Failed. Query 1 fails twice →
        // the degraded attempt completes it.
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean()
                .with_query_panic(0, 3)
                .with_query_panic(1, 2),
        ));
        let cfg = base_cfg().with_retry(RetryPolicy {
            max_retries: 1,
            backoff: Duration::from_micros(10),
        });
        let server = Server::start_with_faults(g, pg, cfg, Some(faults), None);
        let t0 = server.submit(Query::Cc).unwrap();
        match t0.wait() {
            Err(ServeError::Failed { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected Failed, got {other:?}"),
        }
        let t1 = server.submit(Query::Cc).unwrap();
        t1.wait().expect("degraded path completes query 1");
        let snap = server.drain();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.degraded, 2);
        assert_eq!(snap.panics_absorbed, 5);
    }

    #[test]
    fn reach_queries_pack_into_one_bit_parallel_run() {
        let (g, pg) = serve_graph(96);
        // Hold the executor on query 0 long enough for the reach queries
        // to queue up and pack.
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean().with_query_panic(0, 1),
        ));
        let cfg = base_cfg().with_retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(60),
        });
        let server =
            Server::start_with_faults(Arc::clone(&g), Arc::clone(&pg), cfg, Some(faults), None);
        let t0 = server.submit(Query::Cc).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let roots = [0u32, 7, 40, 95];
        let tickets: Vec<_> = roots
            .iter()
            .map(|&r| server.submit(Query::Reach { root: r }).unwrap())
            .collect();
        t0.wait().unwrap();
        let ecfg = EngineConfig::new().with_threads(2);
        for (t, &root) in tickets.into_iter().zip(&roots) {
            let served = t.wait().expect("packed reach completes");
            let direct = grazelle_apps::reach::run(&g, &ecfg, root);
            assert_eq!(served, QueryResult::Reached(direct), "root {root}");
        }
        let snap = server.drain();
        assert_eq!(snap.packed_runs, 1);
        assert_eq!(snap.packed_queries, 4);
    }

    #[test]
    fn drain_writes_a_grzckpt1_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "grz-serve-snap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("final.ckpt");
        let (g, pg) = serve_graph(32);
        let cfg = base_cfg().with_snapshot_path(Some(path.clone()));
        let server = Server::start(g, pg, cfg);
        server.submit(Query::Cc).unwrap().wait().unwrap();
        let snap = server.drain();
        assert_eq!(snap.completed, 1);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], b"GRZCKPT1");
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.iteration, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_handle_snapshots_without_the_server() {
        let (g, pg) = serve_graph(16);
        let server = Server::start(g, pg, base_cfg());
        let handle = server.stats_handle();
        server.submit(Query::Cc).unwrap().wait().unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.completed, 1);
        assert!(snap.p50_latency_ns > 0);
        drop(server);
    }

    #[test]
    fn updates_apply_between_queries_and_version_results() {
        // Two disjoint symmetric chains (0..=31 and 32..=63); the update
        // bridges them, so CC's answer must change across the version
        // boundary and match a cold recompute on the merged edge set.
        let n = 64usize;
        let chains = |el: &mut EdgeList| {
            for v in 0..n as u32 - 1 {
                if v + 1 != 32 {
                    el.push(v, v + 1).unwrap();
                    el.push(v + 1, v).unwrap();
                }
            }
        };
        let mut el = EdgeList::new(n);
        chains(&mut el);
        el.sort_and_dedup();
        let g = Arc::new(Graph::from_edgelist(&el).unwrap());
        let pg = Arc::new(PreparedGraph::new(&g));
        let server = Server::start(Arc::clone(&g), Arc::clone(&pg), base_cfg());

        let before = server.submit(Query::Cc).unwrap().wait().unwrap();
        let QueryResult::Labels(labels) = &before else {
            panic!("expected component labels, got {before:?}");
        };
        assert_ne!(labels[33], labels[3], "chains start disjoint");

        let mut batch = UpdateBatch::new();
        batch.insert(31, 32).insert(32, 31);
        let applied = server.submit_update(batch).unwrap().wait().unwrap();
        assert_eq!(
            applied,
            QueryResult::Updated {
                version: 1,
                inserted: 2,
                deleted: 0,
                merged: false,
            }
        );

        // Cold recompute over the merged edge set is the reference for
        // every query answered after the version boundary.
        let mut mel = EdgeList::new(n);
        chains(&mut mel);
        mel.push(31, 32).unwrap();
        mel.push(32, 31).unwrap();
        mel.sort_and_dedup();
        let mg = Graph::from_edgelist(&mel).unwrap();
        let mpg = PreparedGraph::new(&mg);
        let cfg = EngineConfig::new().with_threads(2);
        let rctx = ResilienceContext::new();
        let pool = ThreadPool::single_group(2);
        for q in [Query::Cc, Query::Bfs { root: 0 }] {
            let served = server.submit(q).unwrap().wait().unwrap();
            let direct = single_shot(&mg, &mpg, &cfg, &rctx, &pool, q).unwrap();
            assert_eq!(served, direct, "{} after update", q.name());
        }
        let QueryResult::Labels(after) = server.submit(Query::Cc).unwrap().wait().unwrap() else {
            panic!("expected component labels");
        };
        assert_eq!(after[33], after[3], "bridge merged the components");

        let snap = server.drain();
        assert_eq!(snap.updates_applied, 1);
        assert_eq!(snap.merges, 0, "a 2-edge batch stays below the threshold");
        assert_eq!(snap.failed + snap.expired, 0);
    }

    #[test]
    fn overlay_disables_packing_but_reach_stays_correct() {
        let (g, pg) = serve_graph(96);
        // Seq 0 is the update; query 1 panics once with a long backoff so
        // the Reach queries pile up behind it — exactly the shape that
        // packed into one bit-parallel run before the overlay existed.
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean().with_query_panic(1, 1),
        ));
        let cfg = base_cfg().with_retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(60),
        });
        let server =
            Server::start_with_faults(Arc::clone(&g), Arc::clone(&pg), cfg, Some(faults), None);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 95).insert(95, 3);
        server.submit_update(batch).unwrap().wait().unwrap();

        let t0 = server.submit(Query::Cc).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let roots = [0u32, 7, 40, 95];
        let tickets: Vec<_> = roots
            .iter()
            .map(|&r| server.submit(Query::Reach { root: r }).unwrap())
            .collect();
        t0.wait().unwrap();

        // Merged-graph reference: serve_graph's edges plus the two inserts.
        let mut mel = EdgeList::new(96);
        for v in 0..96u32 {
            if (v as usize) + 1 < 96 {
                mel.push(v, v + 1).unwrap();
            }
            if v % 3 == 0 {
                mel.push(v, (v * 7 + 2) % 96).unwrap();
            }
        }
        mel.push(0, 95).unwrap();
        mel.push(95, 3).unwrap();
        mel.sort_and_dedup();
        let mg = Graph::from_edgelist(&mel).unwrap();
        let ecfg = EngineConfig::new().with_threads(2);
        for (t, &root) in tickets.into_iter().zip(&roots) {
            let served = t.wait().expect("reach completes over the overlay");
            let direct = grazelle_apps::reach::run(&mg, &ecfg, root);
            assert_eq!(served, QueryResult::Reached(direct), "root {root}");
        }
        let snap = server.drain();
        assert_eq!(
            snap.packed_runs, 0,
            "packing must not run over an active overlay"
        );
        assert_eq!(snap.packed_queries, 0);
        assert_eq!(snap.updates_applied, 1);
    }

    #[test]
    fn saturated_work_estimates_cannot_corrupt_budget_accounting() {
        // Regression for the admission-accounting bug: with the budget
        // disabled (u64::MAX), a pathological estimate used to overflow the
        // unchecked `queued_work += work` charge (debug panic / release
        // wrap), and the post-completion decrement then drifted the counter
        // permanently. Admission must saturate, charge only the delta, and
        // drain back to exactly zero.
        let (g, pg) = serve_graph(32);
        let faults = Arc::new(ServeInjector::new(
            ServeFaultPlan::clean().with_query_panic(0, 1),
        ));
        let cfg = base_cfg().with_retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(60),
        });
        let server = Server::start_with_faults(g, pg, cfg, Some(faults), None);
        let t0 = server.submit(Query::Cc).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // edges × usize::MAX iterations saturates the estimate to u64::MAX;
        // the zero deadline guarantees it expires at iteration 0 instead of
        // actually running.
        let t1 = server
            .submit_with_deadline(
                Query::PageRank {
                    iterations: usize::MAX,
                },
                Some(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(
            server.stats().queued_work,
            u64::MAX,
            "charge saturates at the ceiling instead of wrapping"
        );
        // Admitting more work at the ceiling charges a delta of zero —
        // and must not shed, because the budget is disabled.
        let t2 = server.submit(Query::Cc).unwrap();
        t0.wait().unwrap();
        assert!(matches!(t1.wait(), Err(ServeError::Expired { .. })));
        t2.wait().unwrap();
        let snap = server.drain();
        assert_eq!(
            snap.queued_work, 0,
            "decrements match the charged amounts exactly — no drift"
        );
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.shed_work, 0);
    }
}

//! Server statistics: counters, a bounded latency reservoir, and the
//! plain-text rendering the health endpoint serves.
//!
//! Everything lives behind the server's stats mutex as plain integers —
//! no atomics, no sampling thread. Latency percentiles come from a
//! fixed-size ring of the most recent completions, so a long-running
//! server reports *recent* p50/p99, not the all-time mixture, and memory
//! stays bounded no matter how many queries it serves.

/// Completed-query latencies retained for percentile estimation.
const LATENCY_RING: usize = 4096;

/// Mutable counter state, owned by the server behind a mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub admitted: u64,
    pub completed: u64,
    pub shed_queue: u64,
    pub shed_work: u64,
    pub shed_draining: u64,
    pub expired: u64,
    pub failed: u64,
    pub retries: u64,
    pub panics_absorbed: u64,
    pub degraded: u64,
    pub packed_runs: u64,
    pub packed_queries: u64,
    pub updates_applied: u64,
    pub merges: u64,
    latencies_ns: Vec<u64>,
    next: usize,
}

impl StatsInner {
    /// Records one completed-query latency into the ring.
    pub fn record_latency(&mut self, ns: u64) {
        if self.latencies_ns.len() < LATENCY_RING {
            self.latencies_ns.push(ns);
        } else {
            self.latencies_ns[self.next] = ns;
            self.next = (self.next + 1) % LATENCY_RING;
        }
    }

    /// Immutable copy for reporting; `queue_depth` is sampled by the
    /// caller, which holds the queue lock.
    pub fn snapshot(&self, queue_depth: usize, queued_work: u64) -> StatsSnapshot {
        let mut lat = self.latencies_ns.clone();
        lat.sort_unstable();
        StatsSnapshot {
            queue_depth,
            queued_work,
            admitted: self.admitted,
            completed: self.completed,
            shed_queue: self.shed_queue,
            shed_work: self.shed_work,
            shed_draining: self.shed_draining,
            expired: self.expired,
            failed: self.failed,
            retries: self.retries,
            panics_absorbed: self.panics_absorbed,
            degraded: self.degraded,
            packed_runs: self.packed_runs,
            packed_queries: self.packed_queries,
            updates_applied: self.updates_applied,
            merges: self.merges,
            p50_latency_ns: percentile(&lat, 50),
            p99_latency_ns: percentile(&lat, 99),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// Definition: the p-th percentile is the smallest element such that at
/// least `p%` of the data is ≤ it — element at 1-based rank
/// `⌈p/100 · len⌉`. Boundary conventions, pinned by tests against a naive
/// reference: an empty slice reports 0, `p = 0` reports the minimum (rank
/// clamps up to 1), and `p ≥ 100` reports the maximum (rank clamps down to
/// `len`, which also makes out-of-range `p` safe instead of out-of-bounds).
pub(crate) fn percentile(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64)
        .saturating_mul(p as u64)
        .div_ceil(100)
        .clamp(1, sorted.len() as u64) as usize;
    sorted[rank - 1]
}

/// Point-in-time view of the server, safe to hand to any thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Estimated work queued right now, in edge-sweep units.
    pub queued_work: u64,
    /// Queries accepted past admission control.
    pub admitted: u64,
    /// Queries that completed with a result.
    pub completed: u64,
    /// Admissions refused on queue capacity.
    pub shed_queue: u64,
    /// Admissions refused on the work budget.
    pub shed_work: u64,
    /// Admissions refused because the server was draining.
    pub shed_draining: u64,
    /// Queries cancelled at an iteration boundary by their deadline.
    pub expired: u64,
    /// Queries that exhausted every attempt, including degraded.
    pub failed: u64,
    /// Retry attempts consumed across all queries.
    pub retries: u64,
    /// Executor panics absorbed by the retry loop.
    pub panics_absorbed: u64,
    /// Queries that fell back to the sequential-scalar degraded path.
    pub degraded: u64,
    /// Bit-parallel packed runs executed.
    pub packed_runs: u64,
    /// Queries answered by a packed run.
    pub packed_queries: u64,
    /// Update batches applied to the versioned graph.
    pub updates_applied: u64,
    /// Update batches that ended in a merge rebuild.
    pub merges: u64,
    /// Median completed-query latency (recent window), nanoseconds.
    pub p50_latency_ns: u64,
    /// 99th-percentile completed-query latency (recent window), ns.
    pub p99_latency_ns: u64,
}

impl StatsSnapshot {
    /// Plain-text rendering — one `key: value` per line, stable order —
    /// what the health endpoint writes and the soak job archives.
    pub fn render(&self) -> String {
        format!(
            "grazelle-serve stats\n\
             queue_depth: {}\n\
             queued_work: {}\n\
             admitted: {}\n\
             completed: {}\n\
             shed_queue: {}\n\
             shed_work: {}\n\
             shed_draining: {}\n\
             expired: {}\n\
             failed: {}\n\
             retries: {}\n\
             panics_absorbed: {}\n\
             degraded: {}\n\
             packed_runs: {}\n\
             packed_queries: {}\n\
             updates_applied: {}\n\
             merges: {}\n\
             p50_latency_us: {}\n\
             p99_latency_us: {}\n",
            self.queue_depth,
            self.queued_work,
            self.admitted,
            self.completed,
            self.shed_queue,
            self.shed_work,
            self.shed_draining,
            self.expired,
            self.failed,
            self.retries,
            self.panics_absorbed,
            self.degraded,
            self.packed_runs,
            self.packed_queries,
            self.updates_applied,
            self.merges,
            self.p50_latency_ns / 1_000,
            self.p99_latency_ns / 1_000,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    /// Independent nearest-rank definition: the smallest element with at
    /// least `p%` of the data at or below it, found by scanning.
    fn naive_percentile(sorted: &[u64], p: u32) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let n = sorted.len();
        for (i, &x) in sorted.iter().enumerate() {
            // Share of the data at or below position i, in percent ×n.
            if (i + 1) * 100 >= p.min(100) as usize * n {
                return x;
            }
        }
        sorted[n - 1]
    }

    #[test]
    fn percentile_boundaries() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 0), 10, "p=0 reports the minimum");
        assert_eq!(percentile(&v, 100), 40, "p=100 reports the maximum");
        assert_eq!(percentile(&v, 200), 40, "out-of-range p clamps, no OOB");
        assert_eq!(percentile(&v, 1), 10, "tiny p rounds up to rank 1");
        assert_eq!(percentile(&[], 0), 0);
        assert_eq!(percentile(&[], 100), 0);
        assert_eq!(percentile(&[5], 0), 5);
        assert_eq!(percentile(&[5], 50), 5);
        assert_eq!(percentile(&[5], 100), 5);
        // Exact rank boundaries on a 2-element slice: p=50 must be the
        // first element (rank ⌈1⌉), p=51 the second (rank ⌈1.02⌉ = 2).
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 51), 2);
    }

    #[test]
    fn percentile_matches_naive_reference_on_random_windows() {
        // Deterministic xorshift64* windows of every small length plus
        // ring-sized ones; all p in 0..=100 must agree with the scanning
        // reference.
        let mut x = 0x243F6A8885A308D3u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let lengths = (1..=64).chain([1000, LATENCY_RING - 1, LATENCY_RING]);
        for len in lengths {
            let mut window: Vec<u64> = (0..len).map(|_| rand() % 1_000).collect();
            window.sort_unstable();
            for p in 0..=100 {
                assert_eq!(
                    percentile(&window, p),
                    naive_percentile(&window, p),
                    "len {len} p {p}"
                );
            }
        }
    }

    #[test]
    fn latency_ring_is_bounded_and_recent() {
        let mut s = StatsInner::default();
        for i in 0..(LATENCY_RING as u64 + 100) {
            s.record_latency(i);
        }
        assert_eq!(s.latencies_ns.len(), LATENCY_RING);
        // The oldest 100 samples were overwritten.
        assert!(!s.latencies_ns.contains(&0));
        assert!(s.latencies_ns.contains(&(LATENCY_RING as u64 + 99)));
    }

    #[test]
    fn render_lists_every_counter() {
        let mut s = StatsInner {
            admitted: 3,
            ..StatsInner::default()
        };
        s.record_latency(2_000_000);
        let text = s.snapshot(1, 42).render();
        for key in [
            "queue_depth: 1",
            "queued_work: 42",
            "admitted: 3",
            "p50_latency_us: 2000",
            "p99_latency_us: 2000",
        ] {
            assert!(text.contains(key), "missing {key:?} in:\n{text}");
        }
    }
}

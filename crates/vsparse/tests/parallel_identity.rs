//! Bit-identity proptest suite for the parallel ingestion pipeline
//! (ISSUE 5): at 1, 2, and 8 build threads, the chunked text parse, the
//! parallel counting-sort CSR/CSC, and the parallel Vector-Sparse
//! encoding must agree *exactly* with their sequential counterparts,
//! across uniform, power-law (R-MAT), and grid graph families, weighted
//! and unweighted.

use grazelle_graph::csr::Csr;
use grazelle_graph::edgelist::EdgeList;
use grazelle_graph::gen::rmat::{rmat, RmatConfig};
use grazelle_graph::io::{parse_text_edgelist, parse_text_edgelist_parallel};
use grazelle_sched::pool::ThreadPool;
use grazelle_vsparse::build::VectorSparse;
use proptest::prelude::*;
use std::fmt::Write as _;

const THREAD_ARMS: [usize; 3] = [1, 2, 8];

#[derive(Debug, Clone, Copy)]
enum Family {
    Uniform,
    PowerLaw,
    Grid,
}

/// Deterministic splitmix64 — the test's own RNG so edge sets depend only
/// on the proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One graph instance of a family: (num_vertices, directed edge pairs).
fn family_edges(family: Family, size: usize, seed: u64) -> (usize, Vec<(u32, u32)>) {
    match family {
        Family::Uniform => {
            let n = size.max(2);
            let m = n * 4;
            let mut s = seed;
            let edges = (0..m)
                .map(|_| {
                    let a = (splitmix(&mut s) % n as u64) as u32;
                    let b = (splitmix(&mut s) % n as u64) as u32;
                    (a, b)
                })
                .collect();
            (n, edges)
        }
        Family::PowerLaw => {
            let scale = (size.max(4) as f64).log2().ceil() as u32;
            let el = rmat(&RmatConfig {
                scale: scale.clamp(2, 10),
                edge_factor: 6.0,
                a: 0.57,
                b: 0.19,
                c: 0.19,
                seed,
                permute: false,
                simplify: false,
            });
            (el.num_vertices(), el.edges().to_vec())
        }
        Family::Grid => {
            let k = (size as f64).sqrt().ceil().max(2.0) as u32;
            let n = (k * k) as usize;
            let mut edges = Vec::new();
            for r in 0..k {
                for c in 0..k {
                    let v = r * k + c;
                    if c + 1 < k {
                        edges.push((v, v + 1));
                    }
                    if r + 1 < k {
                        edges.push((v, v + k));
                    }
                }
            }
            (n, edges)
        }
    }
}

/// Deterministic weights, including negative and sub-normal-ish values so
/// bitwise comparison has something to bite on.
fn weights_for(edges: &[(u32, u32)], seed: u64) -> Vec<f64> {
    let mut s = seed ^ 0xdead_beef;
    edges
        .iter()
        .map(|_| {
            let bits = splitmix(&mut s);
            // Map to a finite, parse-round-trippable decimal.
            ((bits % 2_000_001) as f64 - 1_000_000.0) / 128.0
        })
        .collect()
}

/// Renders the text edge-list format the parsers ingest.
fn render_text(edges: &[(u32, u32)], weights: Option<&[f64]>) -> String {
    let mut out = String::with_capacity(edges.len() * 16);
    for (i, &(s, d)) in edges.iter().enumerate() {
        match weights {
            Some(w) => writeln!(out, "{s} {d} {}", w[i]).unwrap(),
            None => writeln!(out, "{s} {d}").unwrap(),
        }
    }
    out
}

fn assert_edgelist_identical(a: &EdgeList, b: &EdgeList, ctx: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{ctx}: vertex counts");
    assert_eq!(a.edges(), b.edges(), "{ctx}: edge arrays");
    match (a.weights(), b.weights()) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert!(
                x.iter()
                    .map(|w| w.to_bits())
                    .eq(y.iter().map(|w| w.to_bits())),
                "{ctx}: weight bits"
            );
        }
        _ => panic!("{ctx}: weight presence differs"),
    }
}

fn check_all_layers(family: Family, size: usize, seed: u64, weighted: bool) {
    let (n, edges) = family_edges(family, size, seed);
    let weights = weighted.then(|| weights_for(&edges, seed));
    let el = EdgeList::from_parts(n, edges.clone(), weights.clone()).unwrap();
    let text = render_text(&edges, weights.as_deref());

    let seq_parse = parse_text_edgelist(text.as_bytes()).unwrap();
    let mut seq_out = Csr::from_edgelist_by_src(&el);
    let mut seq_in = Csr::from_edgelist_by_dst(&el);
    seq_out.sort_neighbors();
    seq_in.sort_neighbors();
    let seq_vs4 = VectorSparse::<4>::from_csr(&seq_in);
    let seq_vs8 = VectorSparse::<8>::from_csr(&seq_in);

    for threads in THREAD_ARMS {
        let ctx = format!("{family:?} size={size} seed={seed} weighted={weighted} t={threads}");
        let pool = ThreadPool::single_group(threads);

        let par_parse = parse_text_edgelist_parallel(text.as_bytes(), &pool).unwrap();
        assert_edgelist_identical(&par_parse, &seq_parse, &ctx);

        let mut par_out = Csr::from_edgelist_by_src_parallel(&el, &pool);
        let mut par_in = Csr::from_edgelist_by_dst_parallel(&el, &pool);
        par_out.sort_neighbors_parallel(&pool);
        par_in.sort_neighbors_parallel(&pool);
        assert_eq!(par_out, seq_out, "{ctx}: CSR");
        assert_eq!(par_in, seq_in, "{ctx}: CSC");

        let par_vs4 = VectorSparse::<4>::from_csr_parallel(&par_in, &pool);
        let par_vs8 = VectorSparse::<8>::from_csr_parallel(&par_in, &pool);
        assert!(par_vs4.bit_identical(&seq_vs4), "{ctx}: VS<4>");
        assert!(par_vs8.bit_identical(&seq_vs8), "{ctx}: VS<8>");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_uniform_family_identical(
        size in 2usize..200,
        seed in any::<u64>(),
        weighted in any::<bool>(),
    ) {
        check_all_layers(Family::Uniform, size, seed, weighted);
    }

    #[test]
    fn prop_power_law_family_identical(
        size in 8usize..512,
        seed in any::<u64>(),
        weighted in any::<bool>(),
    ) {
        check_all_layers(Family::PowerLaw, size, seed, weighted);
    }

    #[test]
    fn prop_grid_family_identical(
        size in 4usize..256,
        seed in any::<u64>(),
        weighted in any::<bool>(),
    ) {
        check_all_layers(Family::Grid, size, seed, weighted);
    }
}

/// Deterministic corner shapes that proptest shrinkers rarely land on:
/// single vertex, single edge, one hub, and an edgeless span of vertices.
#[test]
fn corner_shapes_identical_at_every_thread_count() {
    let shapes: &[(usize, Vec<(u32, u32)>)] = &[
        (1, vec![]),
        (1, vec![(0, 0)]),
        (2, vec![(0, 1)]),
        (64, vec![]),
        (33, (1..33u32).map(|d| (0, d)).collect()),
        (33, (1..33u32).map(|s| (s, 0)).collect()),
    ];
    for (n, edges) in shapes {
        for weighted in [false, true] {
            let weights = weighted.then(|| weights_for(edges, 7));
            let el = EdgeList::from_parts(*n, edges.clone(), weights.clone()).unwrap();
            let text = render_text(edges, weights.as_deref());
            let seq = parse_text_edgelist(text.as_bytes()).unwrap();
            let seq_csr = Csr::from_edgelist_by_src(&el);
            let seq_vs = VectorSparse::<4>::from_csr(&seq_csr);
            for threads in THREAD_ARMS {
                let pool = ThreadPool::single_group(threads);
                let ctx = format!("n={n} m={} weighted={weighted} t={threads}", edges.len());
                let par = parse_text_edgelist_parallel(text.as_bytes(), &pool).unwrap();
                assert_edgelist_identical(&par, &seq, &ctx);
                let par_csr = Csr::from_edgelist_by_src_parallel(&el, &pool);
                assert_eq!(par_csr, seq_csr, "{ctx}");
                let par_vs = VectorSparse::<4>::from_csr_parallel(&par_csr, &pool);
                assert!(par_vs.bit_identical(&seq_vs), "{ctx}");
            }
        }
    }
}

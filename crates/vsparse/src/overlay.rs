//! Overlay-aware iteration over a base + delta Vector-Sparse pair.
//!
//! A versioned graph keeps its base [`VectorSparse`] immutable and encodes
//! pending edge inserts as a second, small Vector-Sparse structure over the
//! same vertex set. Engines consume the pair as two separate phases (base
//! pull/push, then a combining delta push), but every *traversal* consumer —
//! seeding rules, parent re-derivation, degree queries — wants one logical
//! neighbor list per vertex. [`OverlayView`] provides exactly that: merged
//! degrees and a chained neighbor iteration, without materializing anything.

use crate::build::VectorSparse;
use grazelle_graph::types::VertexId;

/// A read-only merged view over a base Vector-Sparse structure and an
/// optional delta of the same orientation (both VSD or both VSS) and the
/// same vertex count.
#[derive(Clone, Copy)]
pub struct OverlayView<'a, const N: usize = 4> {
    base: &'a VectorSparse<N>,
    delta: Option<&'a VectorSparse<N>>,
}

impl<'a, const N: usize> OverlayView<'a, N> {
    /// A view over `base` with an optional `delta` overlay. The delta must
    /// cover the same vertex set.
    pub fn new(base: &'a VectorSparse<N>, delta: Option<&'a VectorSparse<N>>) -> Self {
        if let Some(d) = delta {
            assert_eq!(
                d.num_vertices(),
                base.num_vertices(),
                "delta must cover the base vertex set"
            );
        }
        OverlayView { base, delta }
    }

    /// The shared vertex count.
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Total logical edges: base plus pending delta edges.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.delta.map_or(0, |d| d.num_edges())
    }

    /// Whether a delta overlay is present (and non-trivial to iterate).
    pub fn has_delta(&self) -> bool {
        self.delta.is_some_and(|d| d.num_edges() > 0)
    }

    /// Merged degree of `v` in this orientation (in-degree for VSD,
    /// out-degree for VSS).
    pub fn degree(&self, v: VertexId) -> usize {
        let lanes = |vs: &VectorSparse<N>| {
            vs.vector_range(v)
                .map(|i| vs.vectors()[i].count_valid() as usize)
                .sum::<usize>()
        };
        lanes(self.base) + self.delta.map_or(0, lanes)
    }

    /// Iterates `v`'s merged neighbors: base lanes first (layout order),
    /// then delta lanes. Padding lanes are skipped.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        let expand = move |vs: &'a VectorSparse<N>| {
            vs.vector_range(v)
                .flat_map(move |i| vs.vectors()[i].valid_neighbors())
                .map(|nb| nb as VertexId)
        };
        expand(self.base).chain(self.delta.into_iter().flat_map(expand))
    }

    /// Expands the merged view back to `(tlv, neighbor)` pairs — base edges
    /// in layout order, then delta edges. Tests compare this against a
    /// structure built from the merged edge list directly.
    pub fn expand_edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = self.base.expand_edges();
        if let Some(d) = self.delta {
            out.extend(d.expand_edges());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_graph::csr::Csr;
    use grazelle_graph::edgelist::EdgeList;

    fn vs(n: usize, edges: &[(u32, u32)]) -> VectorSparse<4> {
        let el = EdgeList::from_pairs(n, edges).unwrap();
        VectorSparse::from_csr(&Csr::from_edgelist_by_src(&el))
    }

    #[test]
    fn merged_view_matches_a_structure_built_from_merged_edges() {
        let base_edges = [(0, 1), (0, 2), (1, 3), (3, 0), (3, 4), (3, 5), (3, 6)];
        let delta_edges = [(0, 7), (2, 3), (3, 7)];
        let base = vs(8, &base_edges);
        let delta = vs(8, &delta_edges);
        let view = OverlayView::new(&base, Some(&delta));

        let mut merged: Vec<(u32, u32)> = base_edges.iter().chain(&delta_edges).copied().collect();
        merged.sort_unstable();
        let full = vs(8, &merged);

        assert_eq!(view.num_edges(), full.num_edges());
        for v in 0..8u32 {
            let mut got: Vec<u32> = view.neighbors(v).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = full
                .vector_range(v)
                .flat_map(|i| full.vectors()[i].valid_neighbors())
                .map(|nb| nb as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "vertex {v}");
            assert_eq!(view.degree(v), want.len(), "vertex {v}");
        }
        let mut got = view.expand_edges();
        got.sort_unstable();
        assert_eq!(got, merged);
    }

    #[test]
    fn view_without_delta_is_the_base() {
        let base = vs(4, &[(0, 1), (1, 2), (1, 3)]);
        let view = OverlayView::new(&base, None);
        assert!(!view.has_delta());
        assert_eq!(view.num_edges(), 3);
        assert_eq!(view.neighbors(1).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(view.degree(0), 1);
        assert_eq!(view.expand_edges(), base.expand_edges());
    }

    #[test]
    #[should_panic(expected = "delta must cover the base vertex set")]
    fn mismatched_vertex_sets_are_rejected() {
        let base = vs(4, &[(0, 1)]);
        let delta = vs(5, &[(0, 1)]);
        let _ = OverlayView::new(&base, Some(&delta));
    }
}

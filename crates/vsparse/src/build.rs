//! The Vector-Sparse edge structure: vector array + per-vertex index.

use crate::format::VERTEX_MASK;
use crate::vector::EdgeVector;
use grazelle_graph::csr::Csr;
use grazelle_graph::partition::partition_index;
use grazelle_graph::types::VertexId;
use grazelle_sched::ThreadPool;

/// A complete Vector-Sparse edge structure over one orientation.
///
/// * Built over a CSC (edges grouped by destination) this is
///   **Vector-Sparse-Destination (VSD)** — the pull engine's structure,
///   where the top-level vertex of each vector is the *destination* and the
///   lanes hold *sources*.
/// * Built over a CSR (grouped by source) this is **Vector-Sparse-Source
///   (VSS)** — the push engine's structure.
///
/// The vertex index maps each top-level vertex to its first vector, mirroring
/// Compressed-Sparse; the paper keeps it because frontier checks need to
/// locate a vertex's vectors even though the inner loop never consults it.
#[derive(Debug, Clone)]
pub struct VectorSparse<const N: usize = 4> {
    vectors: Vec<EdgeVector<N>>,
    /// Per-vector weight lanes, index-aligned with `vectors`; padding lanes
    /// carry 0.0. Present only for weighted graphs ("edge weights …
    /// supported by appending a weight vector to each edge vector", §4).
    weights: Option<Vec<[f64; N]>>,
    /// `index[v] .. index[v+1]` is vertex `v`'s vector range.
    index: Vec<u64>,
    num_vertices: usize,
    num_edges: usize,
}

/// Vector-Sparse-Destination with the paper's 4-lane (256-bit) vectors.
pub type Vsd = VectorSparse<4>;
/// Vector-Sparse-Source with the paper's 4-lane (256-bit) vectors.
pub type Vss = VectorSparse<4>;

impl<const N: usize> VectorSparse<N> {
    /// Builds the structure from one Compressed-Sparse orientation. Each
    /// top-level vertex's edges are padded to a multiple of `N` lanes;
    /// degree-0 vertices occupy no vectors.
    pub fn from_csr(csr: &Csr) -> Self {
        let n = csr.num_vertices();
        assert!(
            (n as u64) <= VERTEX_MASK,
            "vertex ids must fit the 48-bit fields"
        );
        let mut index = Vec::with_capacity(n + 1);
        index.push(0u64);
        let mut num_vectors = 0u64;
        for v in 0..n {
            let deg = csr.degree(v as VertexId) as u64;
            num_vectors += deg.div_ceil(N as u64);
            index.push(num_vectors);
        }
        let mut vectors = Vec::with_capacity(num_vectors as usize);
        let mut weights = csr
            .weights()
            .map(|_| Vec::with_capacity(num_vectors as usize));
        let mut lane_buf = [0u64; N];
        for v in 0..n {
            let nbrs = csr.neighbors(v as VertexId);
            let ws = csr.neighbor_weights(v as VertexId);
            for (ci, chunk) in nbrs.chunks(N).enumerate() {
                for (i, &nb) in chunk.iter().enumerate() {
                    lane_buf[i] = nb as u64;
                }
                vectors.push(EdgeVector::new(v as u64, &lane_buf[..chunk.len()]));
                if let (Some(wout), Some(win)) = (&mut weights, ws) {
                    let mut weight_buf = [0.0f64; N];
                    let start = ci * N;
                    weight_buf[..chunk.len()].copy_from_slice(&win[start..start + chunk.len()]);
                    wout.push(weight_buf);
                }
            }
        }
        VectorSparse {
            vectors,
            weights,
            index,
            num_vertices: n,
            num_edges: csr.num_edges(),
        }
    }

    /// Parallel [`VectorSparse::from_csr`] on a [`ThreadPool`], bit-identical
    /// to the sequential build.
    ///
    /// The vertex index is a prefix sum over `ceil(deg/N)`, so every vertex's
    /// vector output range is known up front and ranges are disjoint. Workers
    /// therefore pack contiguous vertex partitions (balanced by vector count
    /// via [`partition_index`]) straight into the preallocated arrays — lane
    /// fill, TLV piece distribution, and weight-lane zero padding all happen
    /// inside [`EdgeVector::new`] / the per-chunk copy exactly as in the
    /// sequential path, so outputs match bit for bit.
    pub fn from_csr_parallel(csr: &Csr, pool: &ThreadPool) -> Self {
        let t = pool.num_threads();
        if t == 1 {
            return Self::from_csr(csr);
        }
        let n = csr.num_vertices();
        assert!(
            (n as u64) <= VERTEX_MASK,
            "vertex ids must fit the 48-bit fields"
        );
        let index = crate::packing::vector_index(&csr.degrees(), N);
        let num_vectors = *index.last().expect("vector index is never empty");
        let mut vectors = vec![EdgeVector::<N>::default(); num_vectors as usize];
        let mut weights = csr
            .weights()
            .map(|_| vec![[0.0f64; N]; num_vectors as usize]);
        let parts = partition_index(&index, t);
        let mut tasks = Vec::with_capacity(t);
        {
            let mut vrest: &mut [EdgeVector<N>] = &mut vectors;
            let mut wrest: Option<&mut [[f64; N]]> = weights.as_deref_mut();
            for p in &parts {
                // `partition_index` ranges count vectors here, not edges.
                let len = p.num_edges();
                let (vhead, vtail) = vrest.split_at_mut(len);
                vrest = vtail;
                let whead = match wrest.take() {
                    Some(w) => {
                        let (a, b) = w.split_at_mut(len);
                        wrest = Some(b);
                        Some(a)
                    }
                    None => None,
                };
                tasks.push((*p, vhead, whead));
            }
        }
        pool.run_tasks(tasks, |_, (part, vslice, mut wslice)| {
            let mut lane_buf = [0u64; N];
            let mut out = 0usize;
            for v in part.vertices() {
                let nbrs = csr.neighbors(v);
                let ws = csr.neighbor_weights(v);
                for (ci, chunk) in nbrs.chunks(N).enumerate() {
                    for (i, &nb) in chunk.iter().enumerate() {
                        lane_buf[i] = nb as u64;
                    }
                    vslice[out] = EdgeVector::new(v as u64, &lane_buf[..chunk.len()]);
                    if let (Some(wout), Some(win)) = (wslice.as_mut(), ws) {
                        let mut weight_buf = [0.0f64; N];
                        let start = ci * N;
                        weight_buf[..chunk.len()].copy_from_slice(&win[start..start + chunk.len()]);
                        wout[out] = weight_buf;
                    }
                    out += 1;
                }
            }
            debug_assert_eq!(
                out,
                vslice.len(),
                "partition under/overfilled its vector range"
            );
        });
        let built = VectorSparse {
            vectors,
            weights,
            index,
            num_vertices: n,
            num_edges: csr.num_edges(),
        };
        debug_assert!(
            built.bit_identical(&Self::from_csr(csr)),
            "parallel Vector-Sparse build diverged from sequential"
        );
        built
    }

    /// True when `self` and `other` are bit-for-bit the same structure.
    /// Weight lanes are compared by bit pattern, so NaN payloads count too.
    pub fn bit_identical(&self, other: &Self) -> bool {
        let weights_eq = match (&self.weights, &other.weights) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .flatten()
                        .map(|w| w.to_bits())
                        .eq(b.iter().flatten().map(|w| w.to_bits()))
            }
            _ => false,
        };
        self.vectors == other.vectors
            && self.index == other.index
            && self.num_vertices == other.num_vertices
            && self.num_edges == other.num_edges
            && weights_eq
    }

    /// Number of top-level vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (valid) edges represented.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of edge vectors, including padding lanes.
    #[inline]
    pub fn num_vectors(&self) -> usize {
        self.vectors.len()
    }

    /// The flat vector array.
    #[inline]
    pub fn vectors(&self) -> &[EdgeVector<N>] {
        &self.vectors
    }

    /// Per-vector weight lanes, if the graph is weighted.
    #[inline]
    pub fn weight_vectors(&self) -> Option<&[[f64; N]]> {
        self.weights.as_deref()
    }

    /// The vertex index (length `num_vertices + 1`).
    #[inline]
    pub fn index(&self) -> &[u64] {
        &self.index
    }

    /// Vector range owned by top-level vertex `v` (used for frontier checks;
    /// the streaming inner loop never needs it).
    #[inline]
    pub fn vector_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.index[v as usize] as usize..self.index[v as usize + 1] as usize
    }

    /// Iterates `(top_level_vertex, &vector, vector_position)` over the
    /// whole edge array in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &EdgeVector<N>, usize)> + '_ {
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (v.top_level_vertex(), v, i))
    }

    /// Expands the structure back to `(tlv, neighbor)` edge pairs — the
    /// inverse of construction, used by tests and format converters.
    pub fn expand_edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for v in &self.vectors {
            let tlv = v.top_level_vertex() as VertexId;
            for nb in v.valid_neighbors() {
                out.push((tlv, nb as VertexId));
            }
        }
        out
    }

    /// Average packing efficiency: valid lanes / total lanes (Figure 9's
    /// metric, measured on the built structure).
    pub fn packing_efficiency(&self) -> f64 {
        if self.vectors.is_empty() {
            return 1.0;
        }
        self.num_edges as f64 / (self.vectors.len() * N) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grazelle_graph::edgelist::EdgeList;
    use proptest::prelude::*;

    fn csr_of(n: usize, pairs: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_pairs(n, pairs).unwrap();
        let _ = &mut el;
        Csr::from_edgelist_by_src(&el)
    }

    #[test]
    fn build_pads_to_lane_multiple() {
        // Degree 7 vertex -> 2 vectors (paper's example), degree 1 -> 1.
        let mut pairs = vec![];
        for d in 1..=7u32 {
            pairs.push((0, d));
        }
        pairs.push((1, 0));
        let vs = VectorSparse::<4>::from_csr(&csr_of(8, &pairs));
        assert_eq!(vs.num_vectors(), 3);
        assert_eq!(vs.num_edges(), 8);
        assert_eq!(vs.vector_range(0), 0..2);
        assert_eq!(vs.vector_range(1), 2..3);
        assert_eq!(vs.vector_range(2), 3..3); // degree-0 vertex
        assert_eq!(vs.vectors()[0].count_valid(), 4);
        assert_eq!(vs.vectors()[1].count_valid(), 3);
        assert_eq!(vs.vectors()[2].count_valid(), 1);
    }

    #[test]
    fn expand_matches_csr() {
        let pairs = &[(0, 1), (0, 2), (1, 0), (3, 2), (3, 1), (3, 0)];
        let csr = csr_of(4, pairs);
        let vs = VectorSparse::<4>::from_csr(&csr);
        let mut expanded = vs.expand_edges();
        expanded.sort_unstable();
        let mut expected: Vec<_> = csr.iter_edges().map(|(v, t, _)| (v, t)).collect();
        expected.sort_unstable();
        assert_eq!(expanded, expected);
    }

    #[test]
    fn packing_efficiency_examples() {
        // One degree-4 vertex: perfectly packed.
        let full: Vec<_> = (1..=4u32).map(|d| (0, d)).collect();
        let vs = VectorSparse::<4>::from_csr(&csr_of(5, &full));
        assert_eq!(vs.packing_efficiency(), 1.0);
        // One degree-1 vertex: 25%.
        let vs = VectorSparse::<4>::from_csr(&csr_of(2, &[(0, 1)]));
        assert_eq!(vs.packing_efficiency(), 0.25);
    }

    #[test]
    fn weighted_structure_keeps_weights_lane_aligned() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 1.5).unwrap();
        el.push_weighted(0, 2, 2.5).unwrap();
        el.push_weighted(2, 0, 9.0).unwrap();
        let csr = Csr::from_edgelist_by_src(&el);
        let vs = VectorSparse::<4>::from_csr(&csr);
        let w = vs.weight_vectors().unwrap();
        assert_eq!(w.len(), vs.num_vectors());
        assert_eq!(w[0][..2], [1.5, 2.5]);
        assert_eq!(w[0][2..], [0.0, 0.0]); // padding lanes zeroed
        assert_eq!(w[1][0], 9.0);
    }

    #[test]
    fn iter_yields_layout_order() {
        let vs = VectorSparse::<4>::from_csr(&csr_of(3, &[(0, 1), (2, 0)]));
        let tlvs: Vec<u64> = vs.iter().map(|(t, _, _)| t).collect();
        assert_eq!(tlvs, vec![0, 2]);
    }

    #[test]
    fn wide_lane_build() {
        let pairs: Vec<_> = (1..=10u32).map(|d| (0, d)).collect();
        let vs8 = VectorSparse::<8>::from_csr(&csr_of(11, &pairs));
        assert_eq!(vs8.num_vectors(), 2);
        assert_eq!(vs8.num_edges(), 10);
        let vs16 = VectorSparse::<16>::from_csr(&csr_of(11, &pairs));
        assert_eq!(vs16.num_vectors(), 1);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let pairs: Vec<(u32, u32)> = (0..40u32)
            .flat_map(|s| (0..(s % 9)).map(move |k| (s, (s * 7 + k) % 40)))
            .collect();
        let csr = csr_of(40, &pairs);
        let seq = VectorSparse::<4>::from_csr(&csr);
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::single_group(threads);
            let par = VectorSparse::<4>::from_csr_parallel(&csr, &pool);
            assert!(par.bit_identical(&seq), "diverged at {threads} threads");
        }
        // Wide lanes too.
        let seq8 = VectorSparse::<8>::from_csr(&csr);
        let pool = ThreadPool::single_group(4);
        assert!(VectorSparse::<8>::from_csr_parallel(&csr, &pool).bit_identical(&seq8));
    }

    #[test]
    fn parallel_build_carries_weights() {
        let mut el = EdgeList::new(16);
        for s in 0..16u32 {
            for k in 0..(s % 5) {
                el.push_weighted(s, (s + k + 1) % 16, s as f64 + k as f64 / 8.0)
                    .unwrap();
            }
        }
        let csr = Csr::from_edgelist_by_src(&el);
        let seq = VectorSparse::<4>::from_csr(&csr);
        let pool = ThreadPool::single_group(3);
        let par = VectorSparse::<4>::from_csr_parallel(&csr, &pool);
        assert!(par.bit_identical(&seq));
        assert_eq!(par.weight_vectors().unwrap(), seq.weight_vectors().unwrap());
    }

    #[test]
    fn parallel_build_handles_degenerate_shapes() {
        let pool = ThreadPool::single_group(4);
        // Empty graph.
        let empty = csr_of(5, &[]);
        assert!(VectorSparse::<4>::from_csr_parallel(&empty, &pool)
            .bit_identical(&VectorSparse::<4>::from_csr(&empty)));
        // One hub owning every edge: fewer busy partitions than workers.
        let hub: Vec<(u32, u32)> = (1..30u32).map(|d| (0, d)).collect();
        let csr = csr_of(30, &hub);
        assert!(VectorSparse::<4>::from_csr_parallel(&csr, &pool)
            .bit_identical(&VectorSparse::<4>::from_csr(&csr)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Construction followed by expansion is lossless for any graph.
        #[test]
        fn prop_roundtrip_through_vectors(
            edges in proptest::collection::vec((0u32..64, 0u32..64), 0..400),
        ) {
            let mut el = EdgeList::from_pairs(64, &edges).unwrap();
            el.sort_and_dedup();
            let csr = Csr::from_edgelist_by_src(&el);
            let vs = VectorSparse::<4>::from_csr(&csr);
            prop_assert_eq!(vs.num_edges(), csr.num_edges());
            let mut expanded = vs.expand_edges();
            expanded.sort_unstable();
            prop_assert_eq!(&expanded[..], el.edges());
            // Index is consistent: every vector of v carries TLV v.
            for v in 0..64u32 {
                for i in vs.vector_range(v) {
                    prop_assert_eq!(vs.vectors()[i].top_level_vertex(), v as u64);
                }
            }
        }

        /// Wide-lane builds are equally lossless (8 and 16 lanes).
        #[test]
        fn prop_roundtrip_wide_lanes(
            edges in proptest::collection::vec((0u32..48, 0u32..48), 0..300),
        ) {
            let mut el = EdgeList::from_pairs(48, &edges).unwrap();
            el.sort_and_dedup();
            let csr = Csr::from_edgelist_by_src(&el);
            let vs8 = VectorSparse::<8>::from_csr(&csr);
            let vs16 = VectorSparse::<16>::from_csr(&csr);
            for (label, expanded) in [("8", vs8.expand_edges()), ("16", vs16.expand_edges())] {
                let mut expanded = expanded;
                expanded.sort_unstable();
                prop_assert_eq!(&expanded[..], el.edges(), "{} lanes", label);
            }
            // Wider lanes never need more vectors.
            let vs4 = VectorSparse::<4>::from_csr(&csr);
            prop_assert!(vs8.num_vectors() <= vs4.num_vectors());
            prop_assert!(vs16.num_vectors() <= vs8.num_vectors());
        }

        /// Packing efficiency from the built structure equals the analytic
        /// prediction from degrees alone.
        #[test]
        fn prop_packing_matches_analytic(
            edges in proptest::collection::vec((0u32..32, 0u32..32), 1..200),
        ) {
            let mut el = EdgeList::from_pairs(32, &edges).unwrap();
            el.sort_and_dedup();
            let csr = Csr::from_edgelist_by_src(&el);
            let vs = VectorSparse::<4>::from_csr(&csr);
            let analytic = crate::packing::packing_efficiency(&csr.degrees(), 4);
            prop_assert!((vs.packing_efficiency() - analytic).abs() < 1e-12);
        }
    }
}

//! One aligned edge vector of `N` 64-bit lanes (paper Figure 4).

use crate::format::{
    decode_tlv, encode_tlv, lane_is_valid, lane_vertex, pack_lane, tlv_piece_bits, Lane,
};

/// An `N`-lane Vector-Sparse edge vector.
///
/// For `N = 4` this is exactly one 256-bit AVX vector; the `#[repr(align)]`
/// keeps every vector load aligned, which is the first of the two
/// vectorization obstacles the format removes (the second — bounds checks —
/// is removed by the per-lane valid bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(32))]
pub struct EdgeVector<const N: usize = 4> {
    lanes: [Lane; N],
}

impl<const N: usize> EdgeVector<N> {
    /// Builds a vector for top-level vertex `tlv` holding up to `N`
    /// neighbors; missing lanes are marked invalid (padding).
    pub fn new(tlv: u64, neighbors: &[u64]) -> Self {
        assert!(neighbors.len() <= N, "too many neighbors for one vector");
        let pieces = encode_tlv::<N>(tlv);
        let bits = tlv_piece_bits(N);
        let lanes = std::array::from_fn(|i| {
            let (valid, vertex) = match neighbors.get(i) {
                Some(&v) => (true, v),
                None => (false, 0),
            };
            pack_lane(valid, pieces[i], bits, vertex)
        });
        EdgeVector { lanes }
    }

    /// Raw lane access.
    #[inline]
    pub fn lanes(&self) -> &[Lane; N] {
        &self.lanes
    }

    /// The top-level vertex this vector belongs to, reassembled from the
    /// per-lane pieces without touching the vertex index.
    #[inline]
    pub fn top_level_vertex(&self) -> u64 {
        decode_tlv(&self.lanes)
    }

    /// Per-lane validity as a bitmask (bit `i` = lane `i` valid).
    #[inline]
    pub fn valid_mask(&self) -> u32 {
        let mut m = 0u32;
        for i in 0..N {
            m |= (lane_is_valid(self.lanes[i]) as u32) << i;
        }
        m
    }

    /// Number of valid edges in this vector (1..=N for vectors produced by
    /// the builder; the format itself permits 0).
    #[inline]
    pub fn count_valid(&self) -> u32 {
        self.valid_mask().count_ones()
    }

    /// The neighbor stored in lane `i`, if that lane is valid.
    #[inline]
    pub fn neighbor(&self, i: usize) -> Option<u64> {
        if lane_is_valid(self.lanes[i]) {
            Some(lane_vertex(self.lanes[i]))
        } else {
            None
        }
    }

    /// The neighbor id in lane `i` regardless of validity (padding lanes
    /// decode as vertex 0 — exactly what a predicated gather would touch if
    /// it were not masked).
    #[inline]
    pub fn neighbor_unchecked(&self, i: usize) -> u64 {
        lane_vertex(self.lanes[i])
    }

    /// Iterates the valid neighbors in lane order.
    pub fn valid_neighbors(&self) -> impl Iterator<Item = u64> + '_ {
        (0..N).filter_map(move |i| self.neighbor(i))
    }
}

impl<const N: usize> Default for EdgeVector<N> {
    fn default() -> Self {
        EdgeVector::new(0, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn four_lane_vector_is_256_bits_and_aligned() {
        assert_eq!(std::mem::size_of::<EdgeVector<4>>(), 32);
        assert_eq!(std::mem::align_of::<EdgeVector<4>>(), 32);
    }

    #[test]
    fn full_vector() {
        let v = EdgeVector::<4>::new(42, &[10, 20, 30, 40]);
        assert_eq!(v.top_level_vertex(), 42);
        assert_eq!(v.valid_mask(), 0b1111);
        assert_eq!(v.count_valid(), 4);
        assert_eq!(
            v.valid_neighbors().collect::<Vec<_>>(),
            vec![10, 20, 30, 40]
        );
    }

    #[test]
    fn padded_vector() {
        // Degree-7 vertex occupies two vectors: 4 valid + 3 valid, 1 invalid
        // (the paper's worked example).
        let second = EdgeVector::<4>::new(7, &[50, 60, 70]);
        assert_eq!(second.valid_mask(), 0b0111);
        assert_eq!(second.count_valid(), 3);
        assert_eq!(second.neighbor(3), None);
        assert_eq!(second.neighbor_unchecked(3), 0);
        assert_eq!(second.top_level_vertex(), 7);
    }

    #[test]
    fn empty_vector_decodes() {
        let v = EdgeVector::<4>::new(99, &[]);
        assert_eq!(v.count_valid(), 0);
        assert_eq!(v.top_level_vertex(), 99);
    }

    #[test]
    #[should_panic(expected = "too many neighbors")]
    fn overfull_vector_panics() {
        EdgeVector::<4>::new(0, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn wide_vectors_work() {
        let nbrs: Vec<u64> = (0..6).collect();
        let v8 = EdgeVector::<8>::new(123_456, &nbrs);
        assert_eq!(v8.top_level_vertex(), 123_456);
        assert_eq!(v8.count_valid(), 6);
        let v16 = EdgeVector::<16>::new(1 << 40, &nbrs);
        assert_eq!(v16.top_level_vertex(), 1 << 40);
    }

    proptest! {
        #[test]
        fn prop_vector_roundtrip(
            tlv in 0u64..(1 << 48),
            nbrs in proptest::collection::vec(0u64..(1 << 48), 0..=4),
        ) {
            let v = EdgeVector::<4>::new(tlv, &nbrs);
            prop_assert_eq!(v.top_level_vertex(), tlv);
            prop_assert_eq!(v.count_valid() as usize, nbrs.len());
            prop_assert_eq!(v.valid_neighbors().collect::<Vec<_>>(), nbrs);
        }

        /// Invalid-lane predication through pack→unpack: padding lanes
        /// must read as invalid via every accessor, decode to neighbor 0
        /// (the address a masked gather would have touched), and keep
        /// their sign bit clear so hardware predication skips them — even
        /// with max-boundary ids in the valid lanes.
        #[test]
        fn prop_invalid_lane_predication(
            tlv in 0u64..(1 << 48),
            nbrs in proptest::collection::vec(0u64..(1 << 48), 0..=8),
        ) {
            let v = EdgeVector::<8>::new(tlv, &nbrs);
            prop_assert_eq!(v.top_level_vertex(), tlv);
            prop_assert_eq!(v.valid_mask(), (1u32 << nbrs.len()) - 1);
            for i in 0..8 {
                let lane = v.lanes()[i];
                if i < nbrs.len() {
                    prop_assert!((lane as i64) < 0, "valid lane {} must gather", i);
                    prop_assert_eq!(v.neighbor(i), Some(nbrs[i]));
                    prop_assert_eq!(v.neighbor_unchecked(i), nbrs[i]);
                } else {
                    prop_assert!((lane as i64) >= 0, "padding lane {} must be masked off", i);
                    prop_assert_eq!(v.neighbor(i), None);
                    prop_assert_eq!(v.neighbor_unchecked(i), 0);
                }
            }
        }

        /// 48-bit ceiling in every field at once: the all-ones id as both
        /// the TLV and every neighbor, at partial fill, survives the
        /// round-trip without the fields bleeding into each other.
        #[test]
        fn prop_max_id_boundary(fill in 0usize..=8) {
            let max = (1u64 << 48) - 1;
            let nbrs = vec![max; fill];
            let v = EdgeVector::<8>::new(max, &nbrs);
            prop_assert_eq!(v.top_level_vertex(), max);
            prop_assert_eq!(v.valid_neighbors().collect::<Vec<_>>(), nbrs);
            for i in fill..8 {
                prop_assert_eq!(v.neighbor_unchecked(i), 0);
            }
        }

        /// The widest (16-lane) vectors carry 3-bit TLV pieces — the
        /// tightest reassembly — and must round-trip the same way.
        #[test]
        fn prop_sixteen_lane_roundtrip(
            tlv in 0u64..(1 << 48),
            nbrs in proptest::collection::vec(0u64..(1 << 48), 0..=16),
        ) {
            let v = EdgeVector::<16>::new(tlv, &nbrs);
            prop_assert_eq!(v.top_level_vertex(), tlv);
            prop_assert_eq!(v.count_valid() as usize, nbrs.len());
            prop_assert_eq!(v.valid_neighbors().collect::<Vec<_>>(), nbrs);
        }
    }
}

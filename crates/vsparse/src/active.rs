//! Per-iteration *active vector list*: a compacted view of the Vector-Sparse
//! edge array that covers only the vectors whose top-level vertex is active.
//!
//! The frontier-aware Edge-Pull path (DESIGN.md §11) builds one of these per
//! superstep when the active-destination density is low, then runs the
//! scheduler-aware chunk loop over *compacted positions* `0..total_vectors()`
//! instead of the full `0..num_vectors()` array. Because every range covers
//! whole per-vertex vector runs (`index[v]..index[v + 1]`), any contiguous
//! slice of compacted positions still hands out contiguous destination runs,
//! which is what keeps the §3 exactly-once-write + merge-buffer contract
//! intact over the indirect iteration space.

use core::ops::Range;

/// Sorted, coalesced ranges of real vector indices for the active
/// destinations of one iteration, addressable by compacted position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveVectorList {
    /// Disjoint, ascending ranges into the real vector array. Adjacent
    /// per-vertex runs are coalesced, so consecutive active destinations
    /// usually share one range.
    ranges: Vec<Range<usize>>,
    /// `prefix[i]` is the compacted position of `ranges[i].start`;
    /// `prefix[ranges.len()]` is the total compacted length.
    prefix: Vec<usize>,
    /// How many active destinations contributed at least one vector.
    active_vertices: usize,
}

impl ActiveVectorList {
    /// Builds the list from the per-vertex vector index (`index[v]..index
    /// [v + 1]` is vertex `v`'s run) and the active vertices in ascending
    /// order. Degree-0 vertices occupy zero vectors and are skipped.
    pub fn from_active(index: &[u64], active: impl IntoIterator<Item = u64>) -> Self {
        let mut ranges: Vec<Range<usize>> = Vec::new();
        let mut prefix = vec![0usize];
        let mut active_vertices = 0usize;
        let mut prev: Option<u64> = None;
        for v in active {
            if let Some(p) = prev {
                assert!(v > p, "active vertices must be strictly ascending");
            }
            prev = Some(v);
            let start = index[v as usize] as usize;
            let end = index[v as usize + 1] as usize;
            if start == end {
                continue;
            }
            active_vertices += 1;
            match ranges.last_mut() {
                Some(last) if last.end == start => last.end = end,
                _ => {
                    ranges.push(start..end);
                    prefix.push(*prefix.last().unwrap());
                }
            }
            let total = prefix.last().unwrap() + (end - start);
            *prefix.last_mut().unwrap() = total;
        }
        Self {
            ranges,
            prefix,
            active_vertices,
        }
    }

    /// Total number of vectors in the compacted iteration space.
    #[inline]
    pub fn total_vectors(&self) -> usize {
        *self.prefix.last().unwrap()
    }

    /// True when no active destination has any in-edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_vectors() == 0
    }

    /// The coalesced real-index ranges, ascending and disjoint.
    #[inline]
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// How many active destinations contributed at least one vector.
    #[inline]
    pub fn active_vertices(&self) -> usize {
        self.active_vertices
    }

    /// Iterates the real vector indices behind a slice of compacted
    /// positions. `pos` must lie within `0..total_vectors()`.
    pub fn real_indices(&self, pos: Range<usize>) -> RealIndices<'_> {
        assert!(
            pos.start <= pos.end && pos.end <= self.total_vectors(),
            "compacted position range {pos:?} out of bounds (total {})",
            self.total_vectors()
        );
        // partition_point gives the first prefix entry > pos.start; the
        // range containing pos.start is the one before it.
        let ri = self
            .prefix
            .partition_point(|&p| p <= pos.start)
            .saturating_sub(1);
        let cur = if pos.is_empty() {
            0
        } else {
            self.ranges[ri].start + (pos.start - self.prefix[ri])
        };
        RealIndices {
            list: self,
            range_idx: ri,
            cur,
            remaining: pos.len(),
        }
    }
}

/// Iterator over real vector indices for a compacted-position slice.
/// Yielded indices are strictly ascending.
#[derive(Debug, Clone)]
pub struct RealIndices<'a> {
    list: &'a ActiveVectorList,
    range_idx: usize,
    cur: usize,
    remaining: usize,
}

impl Iterator for RealIndices<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        while self.cur >= self.list.ranges[self.range_idx].end {
            self.range_idx += 1;
            self.cur = self.list.ranges[self.range_idx].start;
        }
        let idx = self.cur;
        self.cur += 1;
        self.remaining -= 1;
        Some(idx)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RealIndices<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// index for 6 vertices: v0 -> [0,2), v1 -> [2,2) (degree 0),
    /// v2 -> [2,5), v3 -> [5,6), v4 -> [6,9), v5 -> [9,9) (degree 0).
    const INDEX: [u64; 7] = [0, 2, 2, 5, 6, 9, 9];

    #[test]
    fn empty_active_set_is_empty() {
        let list = ActiveVectorList::from_active(&INDEX, []);
        assert!(list.is_empty());
        assert_eq!(list.total_vectors(), 0);
        assert_eq!(list.active_vertices(), 0);
        assert_eq!(list.ranges(), &[]);
        assert_eq!(list.real_indices(0..0).count(), 0);
    }

    #[test]
    fn degree_zero_vertices_are_skipped() {
        let list = ActiveVectorList::from_active(&INDEX, [1, 5]);
        assert!(list.is_empty());
        assert_eq!(list.active_vertices(), 0);
    }

    #[test]
    fn adjacent_runs_coalesce() {
        // v2 ends at 5 where v3 starts, so they share one range.
        let list = ActiveVectorList::from_active(&INDEX, [2, 3]);
        assert_eq!(list.ranges(), std::slice::from_ref(&(2..6)));
        assert_eq!(list.total_vectors(), 4);
        assert_eq!(list.active_vertices(), 2);
        let real: Vec<usize> = list.real_indices(0..4).collect();
        assert_eq!(real, vec![2, 3, 4, 5]);
    }

    #[test]
    fn gaps_produce_separate_ranges() {
        let list = ActiveVectorList::from_active(&INDEX, [0, 3, 4]);
        assert_eq!(list.ranges(), &[0..2, 5..9]);
        assert_eq!(list.total_vectors(), 6);
        let real: Vec<usize> = list.real_indices(0..6).collect();
        assert_eq!(real, vec![0, 1, 5, 6, 7, 8]);
    }

    #[test]
    fn sub_slices_cross_range_gaps() {
        let list = ActiveVectorList::from_active(&INDEX, [0, 3, 4]);
        // Compacted positions: 0->0, 1->1, 2->5, 3->6, 4->7, 5->8.
        assert_eq!(list.real_indices(1..4).collect::<Vec<_>>(), vec![1, 5, 6]);
        assert_eq!(
            list.real_indices(2..2).collect::<Vec<_>>(),
            Vec::<usize>::new()
        );
        assert_eq!(list.real_indices(5..6).collect::<Vec<_>>(), vec![8]);
        assert_eq!(list.real_indices(0..1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn every_slice_matches_the_full_enumeration() {
        let list = ActiveVectorList::from_active(&INDEX, [0, 2, 4]);
        let full: Vec<usize> = list.real_indices(0..list.total_vectors()).collect();
        assert_eq!(full, vec![0, 1, 2, 3, 4, 6, 7, 8]);
        let n = list.total_vectors();
        for s in 0..=n {
            for e in s..=n {
                let got: Vec<usize> = list.real_indices(s..e).collect();
                assert_eq!(got, full[s..e].to_vec(), "slice {s}..{e}");
            }
        }
    }

    #[test]
    fn exact_size_iterator_reports_remaining() {
        let list = ActiveVectorList::from_active(&INDEX, [0, 3, 4]);
        let mut it = list.real_indices(1..5);
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let list = ActiveVectorList::from_active(&INDEX, [0]);
        let _ = list.real_indices(0..3);
    }
}

//! Bit-level lane encoding (paper Figure 4).

/// One 64-bit Vector-Sparse lane.
pub type Lane = u64;

/// Number of bits used for vertex identifiers (both the individual neighbor
/// and the reassembled top-level vertex id).
pub const VERTEX_BITS: u32 = 48;

/// Mask selecting the individual vertex id (bits 47..0).
pub const VERTEX_MASK: u64 = (1u64 << VERTEX_BITS) - 1;

/// The valid bit occupies the sign-bit position so a lane vector doubles as
/// an AVX gather predication mask.
pub const VALID_BIT: u64 = 1u64 << 63;

/// Bit offset of the top-level-vertex piece within a lane.
pub const TLV_SHIFT: u32 = VERTEX_BITS;

// Compile-time checks of the paper's `unused | tlv-piece | valid | vertex`
// layout (Figure 4): the same contract `cargo xtask lint` enforces
// textually, enforced here by the compiler so any drift fails the build.
const _: () = assert!(VERTEX_BITS == 48, "paper fixes vertex ids at 48 bits");
const _: () = assert!(
    VALID_BIT == 1u64 << 63,
    "valid bit must sit in the sign position (gather predication)"
);
const _: () = assert!(
    TLV_SHIFT == 48,
    "TLV piece starts right above the vertex id"
);
const _: () = assert!(VERTEX_MASK == (1u64 << 48) - 1);
const _: () = assert!(VALID_BIT & VERTEX_MASK == 0, "fields must not overlap");
const _: () = assert!(tlv_piece_bits(4) == 12 && tlv_piece_bits(8) == 6 && tlv_piece_bits(16) == 3);

/// Returns the width in bits of each lane's top-level-vertex piece for an
/// `N`-lane vector. The 48-bit id must divide evenly across lanes
/// (`N ∈ {4, 8, 16}` in the paper's discussion of AVX/AVX-512 widths).
pub const fn tlv_piece_bits(lanes: usize) -> u32 {
    assert!(
        lanes != 0 && (VERTEX_BITS as usize).is_multiple_of(lanes),
        "lane count must divide 48"
    );
    VERTEX_BITS / lanes as u32
}

/// Packs one lane from its fields.
///
/// `tlv_piece` must fit in [`tlv_piece_bits`]`(N)` bits for the target
/// vector width; this function takes the piece pre-masked (callers use
/// [`encode_tlv`]). `vertex` must fit in 48 bits.
#[inline]
pub fn pack_lane(valid: bool, tlv_piece: u64, piece_bits: u32, vertex: u64) -> Lane {
    debug_assert!(vertex <= VERTEX_MASK, "vertex id exceeds 48 bits");
    debug_assert!(
        tlv_piece < (1u64 << piece_bits),
        "TLV piece exceeds its field"
    );
    ((valid as u64) << 63) | (tlv_piece << TLV_SHIFT) | (vertex & VERTEX_MASK)
}

/// Unpacks a lane into `(valid, tlv_piece, vertex)`.
#[inline]
pub fn unpack_lane(lane: Lane, piece_bits: u32) -> (bool, u64, u64) {
    let valid = lane & VALID_BIT != 0;
    let piece = (lane >> TLV_SHIFT) & ((1u64 << piece_bits) - 1);
    let vertex = lane & VERTEX_MASK;
    (valid, piece, vertex)
}

/// True when the lane's valid bit is set.
#[inline]
pub fn lane_is_valid(lane: Lane) -> bool {
    lane & VALID_BIT != 0
}

/// The individual (neighbor) vertex id of a lane.
#[inline]
pub fn lane_vertex(lane: Lane) -> u64 {
    lane & VERTEX_MASK
}

/// Splits a 48-bit top-level vertex id into `N` pieces, lane `i` receiving
/// bits `[i*48/N, (i+1)*48/N)`.
pub fn encode_tlv<const N: usize>(tlv: u64) -> [u64; N] {
    assert!(tlv <= VERTEX_MASK, "top-level vertex id exceeds 48 bits");
    let bits = tlv_piece_bits(N);
    let mask = (1u64 << bits) - 1;
    std::array::from_fn(|i| (tlv >> (bits as usize * i)) & mask)
}

/// Reassembles a top-level vertex id from `N` lanes.
pub fn decode_tlv<const N: usize>(lanes: &[Lane; N]) -> u64 {
    let bits = tlv_piece_bits(N);
    let mask = (1u64 << bits) - 1;
    let mut tlv = 0u64;
    for (i, &lane) in lanes.iter().enumerate() {
        tlv |= ((lane >> TLV_SHIFT) & mask) << (bits as usize * i);
    }
    tlv
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn piece_widths() {
        assert_eq!(tlv_piece_bits(4), 12);
        assert_eq!(tlv_piece_bits(8), 6);
        assert_eq!(tlv_piece_bits(16), 3);
    }

    #[test]
    fn valid_bit_is_sign_bit() {
        let lane = pack_lane(true, 0, 12, 0);
        assert_eq!(lane, 1u64 << 63);
        assert!((lane as i64) < 0, "gather masks test the sign bit");
        let lane = pack_lane(false, 0, 12, 0);
        assert!((lane as i64) >= 0);
    }

    #[test]
    fn pack_unpack_example() {
        let lane = pack_lane(true, 0xABC, 12, 0x0000_1234_5678_9ABC);
        let (v, p, x) = unpack_lane(lane, 12);
        assert!(v);
        assert_eq!(p, 0xABC);
        assert_eq!(x, 0x0000_1234_5678_9ABC);
    }

    #[test]
    fn tlv_roundtrip_4_lanes() {
        let tlv = 0x0000_DEAD_BEEF_CAFE & VERTEX_MASK;
        let pieces = encode_tlv::<4>(tlv);
        let lanes: [Lane; 4] =
            std::array::from_fn(|i| pack_lane(i % 2 == 0, pieces[i], 12, i as u64));
        assert_eq!(decode_tlv(&lanes), tlv);
    }

    #[test]
    fn tlv_roundtrip_8_and_16_lanes() {
        let tlv = 0x0000_0123_4567_89AB;
        let p8 = encode_tlv::<8>(tlv);
        let l8: [Lane; 8] = std::array::from_fn(|i| pack_lane(true, p8[i], 6, 0));
        assert_eq!(decode_tlv(&l8), tlv);
        let p16 = encode_tlv::<16>(tlv);
        let l16: [Lane; 16] = std::array::from_fn(|i| pack_lane(true, p16[i], 3, 0));
        assert_eq!(decode_tlv(&l16), tlv);
    }

    #[test]
    fn fields_do_not_interfere() {
        // All-ones vertex with zero TLV must not leak into the TLV field.
        let lane = pack_lane(false, 0, 12, VERTEX_MASK);
        let (v, p, x) = unpack_lane(lane, 12);
        assert!(!v);
        assert_eq!(p, 0);
        assert_eq!(x, VERTEX_MASK);
    }

    proptest! {
        #[test]
        fn prop_lane_roundtrip(valid: bool, piece in 0u64..(1 << 12), vertex in 0u64..=VERTEX_MASK) {
            let lane = pack_lane(valid, piece, 12, vertex);
            prop_assert_eq!(unpack_lane(lane, 12), (valid, piece, vertex));
            prop_assert_eq!(lane_is_valid(lane), valid);
            prop_assert_eq!(lane_vertex(lane), vertex);
        }

        #[test]
        fn prop_tlv_roundtrip(tlv in 0u64..=VERTEX_MASK, vertex in 0u64..=VERTEX_MASK) {
            let pieces = encode_tlv::<4>(tlv);
            let lanes: [Lane; 4] = std::array::from_fn(|i| pack_lane(true, pieces[i], 12, vertex));
            prop_assert_eq!(decode_tlv(&lanes), tlv);
            // Neighbor ids survive alongside the TLV encoding.
            for lane in lanes {
                prop_assert_eq!(lane_vertex(lane), vertex);
            }
        }

        /// TLV piece reassembly at every vector width: splitting a 48-bit
        /// id into 6-bit (8-lane) or 3-bit (16-lane) pieces and packing
        /// those alongside adversarial valid bits and max-boundary
        /// neighbor ids must reassemble the exact id.
        #[test]
        fn prop_tlv_reassembly_across_widths(
            tlv in 0u64..=VERTEX_MASK,
            valid_bits: u16,
            vertex in 0u64..=VERTEX_MASK,
        ) {
            let p8 = encode_tlv::<8>(tlv);
            let l8: [Lane; 8] = std::array::from_fn(|i| {
                pack_lane(valid_bits & (1 << i) != 0, p8[i], 6, vertex)
            });
            prop_assert_eq!(decode_tlv(&l8), tlv);
            let p16 = encode_tlv::<16>(tlv);
            let l16: [Lane; 16] = std::array::from_fn(|i| {
                pack_lane(valid_bits & (1 << i) != 0, p16[i], 3, vertex)
            });
            prop_assert_eq!(decode_tlv(&l16), tlv);
        }
    }

    #[test]
    fn max_vertex_id_boundary() {
        // The 48-bit ceiling: the all-ones id, the top single bit, and
        // one below the ceiling all pack and unpack without leaking into
        // the TLV or valid fields, at every piece width.
        for vertex in [VERTEX_MASK, VERTEX_MASK - 1, 1u64 << 47] {
            for bits in [12u32, 6, 3] {
                let piece_max = (1u64 << bits) - 1;
                let lane = pack_lane(true, piece_max, bits, vertex);
                assert_eq!(unpack_lane(lane, bits), (true, piece_max, vertex));
                let lane = pack_lane(false, 0, bits, vertex);
                assert_eq!(unpack_lane(lane, bits), (false, 0, vertex));
            }
        }
    }
}

//! The Vector-Sparse edge format (paper §4) and its SIMD kernels.
//!
//! Vector-Sparse is a modified Compressed-Sparse layout that encodes edges
//! into aligned, padded vectors of `N` 64-bit lanes (the paper's concrete
//! instance is `N = 4`, one 256-bit AVX vector). Each lane carries:
//!
//! ```text
//!  bit 63    bits 62..60   bits 59..48        bits 47..0
//!  [valid] | [unused]    | [piece of TLV id] | [individual vertex id]
//! ```
//!
//! * the **valid bit** sits in the lane's sign-bit position so the vector
//!   can be fed *directly* as the predication mask of
//!   `_mm256_mask_i64gather_pd` (the paper's `vgatherqpd` usage);
//! * the **top-level vertex (TLV) identifier** — the destination for
//!   Vector-Sparse-Destination (VSD), the source for Vector-Sparse-Source
//!   (VSS) — is spread across the lanes in `48 / N`-bit pieces, so a thread
//!   streaming the edge array detects outer-loop transitions without bounds
//!   checks or vertex-index accesses;
//! * the low 48 bits hold the neighbor exactly as the Compressed-Sparse
//!   edge array would.
//!
//! Invalid lanes pad every top-level vertex's edges to a multiple of `N`,
//! which is what makes all vector loads aligned. [`packing`] quantifies the
//! resulting space overhead (Figure 9).

pub mod active;
pub mod build;
pub mod format;
pub mod overlay;
pub mod packing;
pub mod simd;
pub mod vector;

pub use active::{ActiveVectorList, RealIndices};
pub use build::{VectorSparse, Vsd, Vss};
pub use format::{decode_tlv, encode_tlv, pack_lane, unpack_lane, Lane};
pub use overlay::OverlayView;
pub use vector::EdgeVector;

//! Scalar twins of the AVX-512 8-lane kernels.
//!
//! Same contract as [`super::scalar`] but over [`EdgeVector<8>`] — the
//! 512-bit instantiation of Vector-Sparse the paper sketches ("its
//! underlying ideas are generalizable to other vector architectures and
//! longer vectors (e.g., 512-bit vectors in AVX-512)", §4).

use crate::format::{lane_is_valid, lane_vertex};
use crate::vector::EdgeVector;

#[inline]
fn enabled_lanes(ev: &EdgeVector<8>, extra_mask: u32) -> impl Iterator<Item = usize> + '_ {
    (0..8).filter(move |&i| lane_is_valid(ev.lanes()[i]) && (extra_mask >> i) & 1 == 1)
}

/// Sum over enabled lanes.
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels8`]).
#[inline]
pub unsafe fn gather_sum(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    let mut acc = 0.0;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc += unsafe { *values.get_unchecked(idx) };
    }
    acc
}

/// Minimum over enabled lanes (+∞ identity).
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels8`]).
#[inline]
pub unsafe fn gather_min(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    let mut acc = f64::INFINITY;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc = acc.min(unsafe { *values.get_unchecked(idx) });
    }
    acc
}

/// Maximum over enabled lanes (−∞ identity).
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels8`]).
#[inline]
pub unsafe fn gather_max(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    let mut acc = f64::NEG_INFINITY;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc = acc.max(unsafe { *values.get_unchecked(idx) });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_lane_sum_and_min() {
        let ev = EdgeVector::<8>::new(3, &[0, 1, 2, 3, 4]);
        let vals: Vec<f64> = (0..8).map(|i| i as f64 * 2.0).collect();
        // SAFETY: all lane ids are < vals.len().
        unsafe {
            assert_eq!(gather_sum(&vals, &ev, 0xFF), 0.0 + 2.0 + 4.0 + 6.0 + 8.0);
            assert_eq!(gather_sum(&vals, &ev, 0b10001), 0.0 + 8.0);
            assert_eq!(gather_min(&vals, &ev, 0b11110), 2.0);
            assert_eq!(gather_max(&vals, &ev, 0xFF), 8.0);
            assert_eq!(gather_min(&vals, &ev, 0), f64::INFINITY);
        }
    }
}

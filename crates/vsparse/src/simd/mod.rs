//! SIMD kernels over 4-lane edge vectors, with runtime dispatch.
//!
//! The paper's vectorized pull engine issues one `vgatherqpd` per edge
//! vector, predicated on the per-lane valid bits, then combines the gathered
//! source values with the application's aggregation operator (§4, Listing
//! 7). We expose exactly those kernels:
//!
//! * [`Kernels::gather_sum`] — PageRank-style summation,
//! * [`Kernels::gather_min`] / [`Kernels::gather_max`] — Connected
//!   Components / widest-path style selection,
//! * [`Kernels::gather_weighted_sum`] — weighted aggregation using the
//!   appended weight vectors,
//!
//! each taking an additional `extra_mask` so the engine can fold frontier
//! membership into the predication (lanes participate only when both the
//!   valid bit and the mask bit are set).
//!
//! Dispatch is chosen once via [`detect`] (AVX2 `_mm256_mask_i64gather_pd`
//! when available — the paper's instruction — otherwise a scalar twin with
//! identical semantics; the scalar twin also serves as the "non-vectorized"
//! arm of Figure 10).

pub mod scalar;
pub mod scalar8;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;

use crate::vector::EdgeVector;

/// Which kernel implementation a [`Kernels`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loop (also the Figure 10 baseline).
    Scalar,
    /// 256-bit AVX2 with hardware masked gathers.
    Avx2,
}

/// Detects the best level supported by the running CPU.
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// A dispatched set of gather-reduce kernels.
///
/// # Safety contract shared by all `*_raw` methods
///
/// Every *enabled* lane (valid bit set AND `extra_mask` bit set) must hold a
/// neighbor id `< values.len()`. Vectors built by
/// [`VectorSparse::from_csr`](crate::build::VectorSparse::from_csr) satisfy
/// this whenever `values.len() >= num_vertices()`. Disabled lanes are never
/// dereferenced (that is the point of predication).
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    level: SimdLevel,
}

impl Kernels {
    /// Kernels at an explicit level (used by the Figure 10 comparison).
    pub fn with_level(level: SimdLevel) -> Self {
        #[cfg(not(target_arch = "x86_64"))]
        assert!(level == SimdLevel::Scalar, "AVX2 kernels require x86_64");
        Kernels { level }
    }

    /// Kernels at the best detected level.
    pub fn auto() -> Self {
        Kernels { level: detect() }
    }

    /// The dispatched level.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Sum of `values[neighbor]` over enabled lanes (0.0 when none).
    ///
    /// # Safety
    /// See the type-level contract.
    #[inline]
    pub unsafe fn gather_sum_raw(
        &self,
        values: &[f64],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            SimdLevel::Scalar => scalar::gather_sum(values, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => avx2::gather_sum(values, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => unreachable!(),
        }
    }

    /// Minimum of `values[neighbor]` over enabled lanes (+∞ when none).
    ///
    /// # Safety
    /// See the type-level contract.
    #[inline]
    pub unsafe fn gather_min_raw(
        &self,
        values: &[f64],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            SimdLevel::Scalar => scalar::gather_min(values, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => avx2::gather_min(values, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => unreachable!(),
        }
    }

    /// Maximum of `values[neighbor]` over enabled lanes (−∞ when none).
    ///
    /// # Safety
    /// See the type-level contract.
    #[inline]
    pub unsafe fn gather_max_raw(
        &self,
        values: &[f64],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            SimdLevel::Scalar => scalar::gather_max(values, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => avx2::gather_max(values, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => unreachable!(),
        }
    }

    /// Sum of `weights[i] * values[neighbor_i]` over enabled lanes.
    ///
    /// # Safety
    /// See the type-level contract.
    #[inline]
    pub unsafe fn gather_weighted_sum_raw(
        &self,
        values: &[f64],
        weights: &[f64; 4],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            SimdLevel::Scalar => scalar::gather_weighted_sum(values, weights, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => avx2::gather_weighted_sum(values, weights, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => unreachable!(),
        }
    }

    /// Minimum of `values[neighbor_i] + addends[i]` over enabled lanes — the
    /// min-plus kernel for Single-Source Shortest-Paths.
    ///
    /// # Safety
    /// See the type-level contract. Additionally `addends` must be finite in
    /// every lane (padding lanes are 0.0 by construction).
    #[inline]
    pub unsafe fn gather_add_min_raw(
        &self,
        values: &[f64],
        addends: &[f64; 4],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            SimdLevel::Scalar => scalar::gather_add_min(values, addends, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => avx2::gather_add_min(values, addends, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => unreachable!(),
        }
    }

    /// Bounds-checked [`Kernels::gather_add_min_raw`].
    pub fn gather_add_min(
        &self,
        values: &[f64],
        addends: &[f64; 4],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_add_min_raw(values, addends, ev, extra_mask) }
    }

    /// Bounds-checked [`Kernels::gather_sum_raw`]: asserts that every lane id
    /// (valid or not — padding lanes decode as 0) is within `values`.
    pub fn gather_sum(&self, values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_sum_raw(values, ev, extra_mask) }
    }

    /// Bounds-checked [`Kernels::gather_min_raw`].
    pub fn gather_min(&self, values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_min_raw(values, ev, extra_mask) }
    }

    /// Bounds-checked [`Kernels::gather_max_raw`].
    pub fn gather_max(&self, values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_max_raw(values, ev, extra_mask) }
    }

    /// Bounds-checked [`Kernels::gather_weighted_sum_raw`].
    pub fn gather_weighted_sum(
        &self,
        values: &[f64],
        weights: &[f64; 4],
        ev: &EdgeVector<4>,
        extra_mask: u32,
    ) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_weighted_sum_raw(values, weights, ev, extra_mask) }
    }

    fn check(values: &[f64], ev: &EdgeVector<4>) {
        for i in 0..4 {
            if let Some(n) = ev.neighbor(i) {
                assert!(
                    (n as usize) < values.len(),
                    "lane {i} neighbor {n} out of bounds ({} values)",
                    values.len()
                );
            }
        }
    }
}

impl Default for Kernels {
    fn default() -> Self {
        Kernels::auto()
    }
}

/// Which 8-lane (512-bit) kernel implementation a [`Kernels8`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simd8Level {
    /// Portable scalar loop over the 8 lanes.
    Scalar,
    /// 512-bit AVX-512F with mask-register-predicated gathers.
    Avx512,
}

/// Detects the best 8-lane level supported by the running CPU.
pub fn detect8() -> Simd8Level {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Simd8Level::Avx512;
        }
    }
    Simd8Level::Scalar
}

/// Dispatched gather-reduce kernels over 8-lane edge vectors — the paper's
/// AVX-512 extension (§4, "longer vectors"). Same safety contract as
/// [`Kernels`], with 8-bit lane masks.
#[derive(Debug, Clone, Copy)]
pub struct Kernels8 {
    level: Simd8Level,
}

impl Kernels8 {
    /// Kernels at an explicit level.
    pub fn with_level(level: Simd8Level) -> Self {
        #[cfg(not(target_arch = "x86_64"))]
        assert!(
            level == Simd8Level::Scalar,
            "AVX-512 kernels require x86_64"
        );
        Kernels8 { level }
    }

    /// Kernels at the best detected level.
    pub fn auto() -> Self {
        Kernels8 { level: detect8() }
    }

    /// The dispatched level.
    pub fn level(&self) -> Simd8Level {
        self.level
    }

    /// Sum of `values[neighbor]` over enabled lanes.
    ///
    /// # Safety
    /// Every enabled lane must hold a neighbor id `< values.len()`.
    #[inline]
    pub unsafe fn gather_sum_raw(
        &self,
        values: &[f64],
        ev: &EdgeVector<8>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            Simd8Level::Scalar => scalar8::gather_sum(values, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            Simd8Level::Avx512 => avx512::gather_sum(values, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            Simd8Level::Avx512 => unreachable!(),
        }
    }

    /// Minimum over enabled lanes (+∞ identity).
    ///
    /// # Safety
    /// Every enabled lane must hold a neighbor id `< values.len()`.
    #[inline]
    pub unsafe fn gather_min_raw(
        &self,
        values: &[f64],
        ev: &EdgeVector<8>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            Simd8Level::Scalar => scalar8::gather_min(values, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            Simd8Level::Avx512 => avx512::gather_min(values, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            Simd8Level::Avx512 => unreachable!(),
        }
    }

    /// Maximum over enabled lanes (−∞ identity).
    ///
    /// # Safety
    /// Every enabled lane must hold a neighbor id `< values.len()`.
    #[inline]
    pub unsafe fn gather_max_raw(
        &self,
        values: &[f64],
        ev: &EdgeVector<8>,
        extra_mask: u32,
    ) -> f64 {
        match self.level {
            Simd8Level::Scalar => scalar8::gather_max(values, ev, extra_mask),
            #[cfg(target_arch = "x86_64")]
            Simd8Level::Avx512 => avx512::gather_max(values, ev, extra_mask),
            #[cfg(not(target_arch = "x86_64"))]
            Simd8Level::Avx512 => unreachable!(),
        }
    }

    /// Bounds-checked [`Kernels8::gather_sum_raw`].
    pub fn gather_sum(&self, values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_sum_raw(values, ev, extra_mask) }
    }

    /// Bounds-checked [`Kernels8::gather_min_raw`].
    pub fn gather_min(&self, values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_min_raw(values, ev, extra_mask) }
    }

    /// Bounds-checked [`Kernels8::gather_max_raw`].
    pub fn gather_max(&self, values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
        Self::check(values, ev);
        // SAFETY: check() just asserted every lane id is within `values`.
        unsafe { self.gather_max_raw(values, ev, extra_mask) }
    }

    fn check(values: &[f64], ev: &EdgeVector<8>) {
        for i in 0..8 {
            if let Some(n) = ev.neighbor(i) {
                assert!(
                    (n as usize) < values.len(),
                    "lane {i} neighbor {n} out of bounds ({} values)",
                    values.len()
                );
            }
        }
    }
}

impl Default for Kernels8 {
    fn default() -> Self {
        Kernels8::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values() -> Vec<f64> {
        (0..16).map(|i| i as f64 * 1.5).collect()
    }

    #[test]
    fn detection_runs() {
        let lvl = detect();
        let k = Kernels::auto();
        assert_eq!(k.level(), lvl);
    }

    #[test]
    fn scalar_gather_sum_full_vector() {
        let k = Kernels::with_level(SimdLevel::Scalar);
        let ev = EdgeVector::<4>::new(0, &[1, 2, 3, 4]);
        let v = values();
        assert_eq!(k.gather_sum(&v, &ev, 0b1111), 1.5 + 3.0 + 4.5 + 6.0);
    }

    #[test]
    fn scalar_gather_respects_padding() {
        let k = Kernels::with_level(SimdLevel::Scalar);
        let ev = EdgeVector::<4>::new(0, &[5, 6]);
        let v = values();
        assert_eq!(k.gather_sum(&v, &ev, 0b1111), 7.5 + 9.0);
    }

    #[test]
    fn extra_mask_filters_lanes() {
        let k = Kernels::with_level(SimdLevel::Scalar);
        let ev = EdgeVector::<4>::new(0, &[1, 2, 3, 4]);
        let v = values();
        assert_eq!(k.gather_sum(&v, &ev, 0b0101), 1.5 + 4.5);
        assert_eq!(k.gather_sum(&v, &ev, 0), 0.0);
    }

    #[test]
    fn min_max_identities() {
        let k = Kernels::with_level(SimdLevel::Scalar);
        let ev = EdgeVector::<4>::new(0, &[]);
        let v = values();
        assert_eq!(k.gather_min(&v, &ev, 0b1111), f64::INFINITY);
        assert_eq!(k.gather_max(&v, &ev, 0b1111), f64::NEG_INFINITY);
    }

    #[test]
    fn weighted_sum() {
        let k = Kernels::with_level(SimdLevel::Scalar);
        let ev = EdgeVector::<4>::new(0, &[2, 4]);
        let w = [10.0, 100.0, 0.0, 0.0];
        let v = values();
        assert_eq!(k.gather_weighted_sum(&v, &w, &ev, 0b1111), 30.0 + 600.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn checked_api_catches_overrun() {
        let k = Kernels::with_level(SimdLevel::Scalar);
        let ev = EdgeVector::<4>::new(0, &[100]);
        k.gather_sum(&values(), &ev, 0b1111);
    }
}

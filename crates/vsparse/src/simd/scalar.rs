//! Scalar twins of the AVX2 kernels.
//!
//! Semantics are lane-for-lane identical to [`super::avx2`]; these double as
//! the portable fallback and as the "non-vectorized" Edge-Pull arm of the
//! Figure 10 comparison ("we disable vectorization by replacing vectorized
//! code, such as the `vgatherqpd` instruction, with versions that process a
//! single edge at a time", §6.2).

use crate::format::{lane_is_valid, lane_vertex};
use crate::vector::EdgeVector;

#[inline]
fn enabled_lanes(ev: &EdgeVector<4>, extra_mask: u32) -> impl Iterator<Item = usize> + '_ {
    (0..4).filter(move |&i| lane_is_valid(ev.lanes()[i]) && (extra_mask >> i) & 1 == 1)
}

/// Sum over enabled lanes. See [`super::Kernels::gather_sum_raw`] for the
/// safety contract (enabled lanes in bounds).
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels`]).
#[inline]
pub unsafe fn gather_sum(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    let mut acc = 0.0;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc += unsafe { *values.get_unchecked(idx) };
    }
    acc
}

/// Minimum over enabled lanes (+∞ identity).
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels`]).
#[inline]
pub unsafe fn gather_min(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    let mut acc = f64::INFINITY;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc = acc.min(unsafe { *values.get_unchecked(idx) });
    }
    acc
}

/// Maximum over enabled lanes (−∞ identity).
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels`]).
#[inline]
pub unsafe fn gather_max(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    let mut acc = f64::NEG_INFINITY;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc = acc.max(unsafe { *values.get_unchecked(idx) });
    }
    acc
}

/// Weighted sum over enabled lanes.
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels`]).
#[inline]
pub unsafe fn gather_weighted_sum(
    values: &[f64],
    weights: &[f64; 4],
    ev: &EdgeVector<4>,
    extra_mask: u32,
) -> f64 {
    let mut acc = 0.0;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc += weights[i] * unsafe { *values.get_unchecked(idx) };
    }
    acc
}

/// Minimum of `values[neighbor] + addends[i]` over enabled lanes (+∞
/// identity) — the min-plus kernel used by Single-Source Shortest-Paths.
///
/// # Safety
/// Every enabled lane (valid bit AND `extra_mask` bit) must hold a
/// neighbor id `< values.len()` (see [`super::Kernels`]).
#[inline]
pub unsafe fn gather_add_min(
    values: &[f64],
    addends: &[f64; 4],
    ev: &EdgeVector<4>,
    extra_mask: u32,
) -> f64 {
    let mut acc = f64::INFINITY;
    for i in enabled_lanes(ev, extra_mask) {
        let idx = lane_vertex(ev.lanes()[i]) as usize;
        debug_assert!(idx < values.len());
        // SAFETY: enabled lanes are in bounds (this function's contract).
        acc = acc.min(unsafe { *values.get_unchecked(idx) } + addends[i]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_skips_invalid_and_masked() {
        let ev = EdgeVector::<4>::new(9, &[0, 1, 2]);
        let vals = [10.0, 20.0, 40.0];
        // SAFETY: all lane ids are < vals.len().
        unsafe {
            assert_eq!(gather_sum(&vals, &ev, 0b1111), 70.0);
            assert_eq!(gather_sum(&vals, &ev, 0b1001), 10.0); // lane 3 invalid
            assert_eq!(gather_sum(&vals, &ev, 0b1000), 0.0);
        }
    }

    #[test]
    fn min_and_max() {
        let ev = EdgeVector::<4>::new(0, &[0, 1, 2, 0]);
        let vals = [5.0, -3.0, 9.0];
        // SAFETY: all lane ids are < vals.len().
        unsafe {
            assert_eq!(gather_min(&vals, &ev, 0b1111), -3.0);
            assert_eq!(gather_max(&vals, &ev, 0b1111), 9.0);
            assert_eq!(gather_min(&vals, &ev, 0b1001), 5.0);
        }
    }

    #[test]
    fn weighted() {
        let ev = EdgeVector::<4>::new(0, &[1, 0]);
        let vals = [2.0, 3.0];
        let w = [0.5, 2.0, 99.0, 99.0];
        // SAFETY: all lane ids are < vals.len().
        unsafe {
            assert_eq!(gather_weighted_sum(&vals, &w, &ev, 0b1111), 1.5 + 4.0);
        }
    }
}

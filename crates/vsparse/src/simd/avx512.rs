//! AVX-512 8-lane gather-reduce kernels — the paper's sketched extension to
//! "longer vectors (e.g., 512-bit vectors in AVX-512)" (§4).
//!
//! The 512-bit instruction set makes the format's predication even more
//! direct than AVX2: instead of borrowing the sign bit of a vector mask,
//! the valid bits (already a compact bitmask via
//! [`EdgeVector::valid_mask`]) AND the caller's frontier mask drop straight
//! into a `k` mask register consumed by `vgatherqpd`'s masked form.

#![cfg(target_arch = "x86_64")]
#![allow(unused_unsafe)]

use crate::format::VERTEX_MASK;
use crate::vector::EdgeVector;
use std::arch::x86_64::*;

/// Predicated 8-lane gather from `values`; disabled lanes yield `src`.
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`; requires
/// AVX-512F (dispatched behind [`super::detect8`]).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn masked_gather8(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32, src: f64) -> __m512d {
    // SAFETY: the lane load reads the full fixed-size EdgeVector; the
    // masked vgatherqpd dereferences values+idx only on enabled lanes,
    // which the caller guarantees are in bounds.
    unsafe {
        let k: __mmask8 = (ev.valid_mask() & extra_mask) as __mmask8;
        let lanes = _mm512_loadu_si512(ev.lanes().as_ptr() as *const _);
        let idx = _mm512_and_si512(lanes, _mm512_set1_epi64(VERTEX_MASK as i64));
        let srcv = _mm512_set1_pd(src);
        _mm512_mask_i64gather_pd::<8>(srcv, k, idx, values.as_ptr())
    }
}

/// Sum over enabled lanes.
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`; requires
/// AVX-512F (callers dispatch via [`super::detect8`]).
#[inline]
pub unsafe fn gather_sum(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_sum_impl(values, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX-512F availability.
#[target_feature(enable = "avx512f")]
unsafe fn gather_sum_impl(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract.
    unsafe { _mm512_reduce_add_pd(masked_gather8(values, ev, extra_mask, 0.0)) }
}

/// Minimum over enabled lanes (+∞ identity).
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`; requires
/// AVX-512F (callers dispatch via [`super::detect8`]).
#[inline]
pub unsafe fn gather_min(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_min_impl(values, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX-512F availability.
#[target_feature(enable = "avx512f")]
unsafe fn gather_min_impl(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract.
    unsafe { _mm512_reduce_min_pd(masked_gather8(values, ev, extra_mask, f64::INFINITY)) }
}

/// Maximum over enabled lanes (−∞ identity).
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`; requires
/// AVX-512F (callers dispatch via [`super::detect8`]).
#[inline]
pub unsafe fn gather_max(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_max_impl(values, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX-512F availability.
#[target_feature(enable = "avx512f")]
unsafe fn gather_max_impl(values: &[f64], ev: &EdgeVector<8>, extra_mask: u32) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract.
    unsafe { _mm512_reduce_max_pd(masked_gather8(values, ev, extra_mask, f64::NEG_INFINITY)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::scalar8;
    use proptest::prelude::*;

    fn avx512_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
    }

    #[test]
    fn matches_scalar8_on_examples() {
        if !avx512_available() {
            return;
        }
        let values: Vec<f64> = (0..128).map(|i| (i * 7 % 31) as f64).collect();
        let cases = [
            EdgeVector::<8>::new(1, &[0, 1, 2, 3, 4, 5, 6, 7]),
            EdgeVector::<8>::new(1, &[100]),
            EdgeVector::<8>::new(1, &[127, 0, 64]),
            EdgeVector::<8>::new(1, &[]),
        ];
        for ev in &cases {
            for mask in [0u32, 0x01, 0x55, 0xAA, 0xFF, 0x83] {
                // SAFETY: lane ids are < values.len(); AVX-512F checked.
                unsafe {
                    assert_eq!(
                        gather_sum(&values, ev, mask),
                        scalar8::gather_sum(&values, ev, mask),
                        "{ev:?} mask {mask:#x}"
                    );
                    assert_eq!(
                        gather_min(&values, ev, mask),
                        scalar8::gather_min(&values, ev, mask)
                    );
                    assert_eq!(
                        gather_max(&values, ev, mask),
                        scalar8::gather_max(&values, ev, mask)
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_avx512_equals_scalar8(
            nbrs in proptest::collection::vec(0u64..64, 0..=8),
            mask in 0u32..256,
            tlv in 0u64..(1 << 48),
        ) {
            if !avx512_available() {
                return Ok(());
            }
            // Integer-valued doubles: sums are exact under any association,
            // so tree (AVX-512) and sequential (scalar) reductions agree
            // bit-for-bit.
            let values: Vec<f64> = (0..64).map(|i| ((i * 13 + 5) % 97) as f64).collect();
            let ev = EdgeVector::<8>::new(tlv, &nbrs);
            // SAFETY: lane ids are < 64 = values.len(); AVX-512F checked.
            unsafe {
                prop_assert_eq!(gather_sum(&values, &ev, mask), scalar8::gather_sum(&values, &ev, mask));
                prop_assert_eq!(gather_min(&values, &ev, mask), scalar8::gather_min(&values, &ev, mask));
                prop_assert_eq!(gather_max(&values, &ev, mask), scalar8::gather_max(&values, &ev, mask));
            }
        }
    }
}

//! AVX2 gather-reduce kernels (`std::arch` port of the paper's x86 assembly).
//!
//! The central instruction is `_mm256_mask_i64gather_pd` (`vgatherqpd`),
//! whose per-lane predication consumes the *sign bit* of each 64-bit mask
//! lane. Vector-Sparse places the valid bit exactly there, so an edge vector
//! is its own gather mask after AND-ing in the caller's extra (frontier)
//! mask. Lane indices are the low 48 bits, isolated with one vector AND —
//! no unpacking, no bounds checks (paper §4).

#![cfg(target_arch = "x86_64")]
// Inner `unsafe {}` blocks are kept explicit inside `unsafe fn` bodies for
// edition-2024 compatibility; rustc 2021 flags them as redundant.
#![allow(unused_unsafe)]

use crate::format::VERTEX_MASK;
use crate::vector::EdgeVector;
use std::arch::x86_64::*;

/// Builds the combined predication mask: lane sign bits from the edge
/// vector's valid bits, AND per-lane expansion of `extra_mask`.
///
/// # Safety
/// Requires AVX2 (dispatched behind [`super::detect`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn combined_mask(ev: &EdgeVector<4>, extra_mask: u32) -> __m256i {
    // SAFETY: EdgeVector<4> is 32-byte aligned, so the aligned load is
    // valid; the rest is register-only lane arithmetic.
    unsafe {
        let lanes = _mm256_load_si256(ev.lanes().as_ptr() as *const __m256i);
        let extra = _mm256_set_epi64x(
            ((extra_mask as i64 >> 3) & 1) << 63,
            ((extra_mask as i64 >> 2) & 1) << 63,
            ((extra_mask as i64 >> 1) & 1) << 63,
            ((extra_mask as i64) & 1) << 63,
        );
        _mm256_and_si256(lanes, extra)
    }
}

/// Lane indices: the low 48 bits of each lane.
///
/// # Safety
/// Requires AVX2 (dispatched behind [`super::detect`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn lane_indices(ev: &EdgeVector<4>) -> __m256i {
    // SAFETY: EdgeVector<4> is 32-byte aligned, so the aligned load is
    // valid; the AND is register-only.
    unsafe {
        let lanes = _mm256_load_si256(ev.lanes().as_ptr() as *const __m256i);
        _mm256_and_si256(lanes, _mm256_set1_epi64x(VERTEX_MASK as i64))
    }
}

/// Horizontal reduction of the four lanes.
///
/// # Safety
/// Requires AVX2 (dispatched behind [`super::detect`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: __m256d) -> f64 {
    // SAFETY: register-only shuffles and arithmetic; no memory access.
    unsafe {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let sum2 = _mm_add_pd(lo, hi);
        let shuf = _mm_unpackhi_pd(sum2, sum2);
        _mm_cvtsd_f64(_mm_add_sd(sum2, shuf))
    }
}

/// Horizontal reduction of the four lanes.
///
/// # Safety
/// Requires AVX2 (dispatched behind [`super::detect`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hmin(v: __m256d) -> f64 {
    // SAFETY: register-only shuffles and arithmetic; no memory access.
    unsafe {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let m2 = _mm_min_pd(lo, hi);
        let shuf = _mm_unpackhi_pd(m2, m2);
        _mm_cvtsd_f64(_mm_min_sd(m2, shuf))
    }
}

/// Horizontal reduction of the four lanes.
///
/// # Safety
/// Requires AVX2 (dispatched behind [`super::detect`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hmax(v: __m256d) -> f64 {
    // SAFETY: register-only shuffles and arithmetic; no memory access.
    unsafe {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let m2 = _mm_max_pd(lo, hi);
        let shuf = _mm_unpackhi_pd(m2, m2);
        _mm_cvtsd_f64(_mm_max_sd(m2, shuf))
    }
}

/// Predicated 4-lane gather from `values`; disabled lanes yield `src`.
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`; requires
/// AVX2 (dispatched behind [`super::detect`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn masked_gather(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32, src: f64) -> __m256d {
    // SAFETY: vgatherqpd dereferences values+idx only on enabled lanes,
    // and the caller guarantees those indices are in bounds.
    unsafe {
        let mask = _mm256_castsi256_pd(combined_mask(ev, extra_mask));
        let idx = lane_indices(ev);
        let srcv = _mm256_set1_pd(src);
        // Disabled lanes keep `src`; enabled lanes load values[idx].
        _mm256_mask_i64gather_pd::<8>(srcv, values.as_ptr(), idx, mask)
    }
}

/// Sum over enabled lanes. Safety: enabled lanes must index within `values`.
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`
/// (see [`super::Kernels`]); requires AVX2 (callers dispatch via [`super::detect`]).
#[inline]
pub unsafe fn gather_sum(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_sum_impl(values, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX2 availability.
#[target_feature(enable = "avx2")]
unsafe fn gather_sum_impl(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract.
    unsafe { hsum(masked_gather(values, ev, extra_mask, 0.0)) }
}

/// Minimum over enabled lanes (+∞ identity).
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`
/// (see [`super::Kernels`]); requires AVX2 (callers dispatch via [`super::detect`]).
#[inline]
pub unsafe fn gather_min(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_min_impl(values, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX2 availability.
#[target_feature(enable = "avx2")]
unsafe fn gather_min_impl(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract.
    unsafe { hmin(masked_gather(values, ev, extra_mask, f64::INFINITY)) }
}

/// Maximum over enabled lanes (−∞ identity).
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`
/// (see [`super::Kernels`]); requires AVX2 (callers dispatch via [`super::detect`]).
#[inline]
pub unsafe fn gather_max(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_max_impl(values, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX2 availability.
#[target_feature(enable = "avx2")]
unsafe fn gather_max_impl(values: &[f64], ev: &EdgeVector<4>, extra_mask: u32) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract.
    unsafe { hmax(masked_gather(values, ev, extra_mask, f64::NEG_INFINITY)) }
}

/// Weighted sum over enabled lanes. Padding weight lanes are 0.0 by
/// construction, and disabled gather lanes return 0.0, so a full-width
/// multiply-sum is exact.
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`
/// (see [`super::Kernels`]); requires AVX2 (callers dispatch via [`super::detect`]).
#[inline]
pub unsafe fn gather_weighted_sum(
    values: &[f64],
    weights: &[f64; 4],
    ev: &EdgeVector<4>,
    extra_mask: u32,
) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_weighted_sum_impl(values, weights, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX2 availability.
#[target_feature(enable = "avx2")]
unsafe fn gather_weighted_sum_impl(
    values: &[f64],
    weights: &[f64; 4],
    ev: &EdgeVector<4>,
    extra_mask: u32,
) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract; the
    // weight load reads a full fixed-size array.
    unsafe {
        let gathered = masked_gather(values, ev, extra_mask, 0.0);
        let w = _mm256_loadu_pd(weights.as_ptr());
        hsum(_mm256_mul_pd(gathered, w))
    }
}

/// Minimum of `values[neighbor] + addends[i]` over enabled lanes (+∞
/// identity). Disabled lanes gather +∞ and the addend keeps them at +∞
/// (weight lanes are finite), so they never win the min.
///
/// # Safety
/// Every enabled lane must hold a neighbor id `< values.len()`
/// (see [`super::Kernels`]); requires AVX2 (callers dispatch via [`super::detect`]).
#[inline]
pub unsafe fn gather_add_min(
    values: &[f64],
    addends: &[f64; 4],
    ev: &EdgeVector<4>,
    extra_mask: u32,
) -> f64 {
    // SAFETY: same contract, forwarded to the target_feature twin.
    unsafe { gather_add_min_impl(values, addends, ev, extra_mask) }
}

/// # Safety
/// Same contract as the public wrapper, plus AVX2 availability.
#[target_feature(enable = "avx2")]
unsafe fn gather_add_min_impl(
    values: &[f64],
    addends: &[f64; 4],
    ev: &EdgeVector<4>,
    extra_mask: u32,
) -> f64 {
    // SAFETY: enabled lanes are in bounds per the caller contract; the
    // addend load reads a full fixed-size array.
    unsafe {
        let gathered = masked_gather(values, ev, extra_mask, f64::INFINITY);
        let a = _mm256_loadu_pd(addends.as_ptr());
        hmin(_mm256_add_pd(gathered, a))
    }
}

#[cfg(test)]
mod tests {
    //! Equivalence tests against the scalar twins; these run only when the
    //! host supports AVX2 (they are a no-op skip otherwise).
    use super::*;
    use crate::simd::scalar;
    use proptest::prelude::*;

    fn avx2_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[test]
    fn matches_scalar_on_examples() {
        if !avx2_available() {
            return;
        }
        let values: Vec<f64> = (0..64).map(|i| (i * 3) as f64).collect();
        let cases = [
            EdgeVector::<4>::new(7, &[0, 1, 2, 3]),
            EdgeVector::<4>::new(7, &[5]),
            EdgeVector::<4>::new(7, &[63, 0, 62]),
            EdgeVector::<4>::new(7, &[]),
        ];
        for ev in &cases {
            for mask in 0..16u32 {
                // SAFETY: every lane id is < values.len(); AVX2 checked.
                unsafe {
                    assert_eq!(
                        gather_sum(&values, ev, mask),
                        scalar::gather_sum(&values, ev, mask),
                        "sum mismatch {ev:?} mask {mask:#b}"
                    );
                    assert_eq!(
                        gather_min(&values, ev, mask),
                        scalar::gather_min(&values, ev, mask)
                    );
                    assert_eq!(
                        gather_max(&values, ev, mask),
                        scalar::gather_max(&values, ev, mask)
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_avx2_equals_scalar(
            nbrs in proptest::collection::vec(0u64..32, 0..=4),
            mask in 0u32..16,
            tlv in 0u64..(1 << 48),
            seed in 0u64..1000,
        ) {
            if !avx2_available() {
                return Ok(());
            }
            let values: Vec<f64> = (0..32).map(|i| ((i as u64 * 2654435761 + seed) % 97) as f64).collect();
            let ev = EdgeVector::<4>::new(tlv, &nbrs);
            let weights = [0.5, 1.5, 2.5, 3.5];
            // SAFETY: lane ids are < 32 = values.len(); AVX2 checked.
            unsafe {
                prop_assert_eq!(gather_sum(&values, &ev, mask), scalar::gather_sum(&values, &ev, mask));
                prop_assert_eq!(gather_min(&values, &ev, mask), scalar::gather_min(&values, &ev, mask));
                prop_assert_eq!(gather_max(&values, &ev, mask), scalar::gather_max(&values, &ev, mask));
                prop_assert_eq!(
                    gather_weighted_sum(&values, &weights, &ev, mask),
                    scalar::gather_weighted_sum(&values, &weights, &ev, mask)
                );
                prop_assert_eq!(
                    gather_add_min(&values, &weights, &ev, mask),
                    scalar::gather_add_min(&values, &weights, &ev, mask)
                );
            }
        }
    }
}

//! Packing-efficiency analytics (paper §6.2, Figure 9).
//!
//! Packing efficiency is the fraction of valid lanes across all edge
//! vectors. It depends only on the degree sequence and the lane count, so
//! it can be computed analytically without materializing the structure —
//! which is how the Figure 9b sweep over 30 synthetic graphs stays cheap.

/// Analytic packing efficiency for a degree sequence and `lanes`-wide
/// vectors: `Σ deg / Σ (⌈deg/lanes⌉ · lanes)`. Degree-0 vertices occupy no
/// vectors and do not count. Returns 1.0 for an edgeless graph (no padding
/// exists to waste).
pub fn packing_efficiency(degrees: &[u32], lanes: usize) -> f64 {
    assert!(lanes >= 1);
    let mut valid = 0u64;
    let mut total = 0u64;
    for &d in degrees {
        valid += d as u64;
        total += (d as u64).div_ceil(lanes as u64) * lanes as u64;
    }
    if total == 0 {
        1.0
    } else {
        valid as f64 / total as f64
    }
}

/// Prefix-sum vector index for a degree sequence: `index[v] .. index[v+1]`
/// is vertex `v`'s vector range in a `lanes`-wide Vector-Sparse layout
/// (`index.last()` is the total vector count). Because the index is a prefix
/// sum, every vertex's output range is known before a single vector is
/// written and the ranges are pairwise disjoint — this is what lets the
/// parallel encoder pack vertex partitions into preallocated storage without
/// any coordination.
pub fn vector_index(degrees: &[u32], lanes: usize) -> Vec<u64> {
    assert!(lanes >= 1);
    let mut index = Vec::with_capacity(degrees.len() + 1);
    index.push(0u64);
    let mut total = 0u64;
    for &d in degrees {
        total += (d as u64).div_ceil(lanes as u64);
        index.push(total);
    }
    index
}

/// Space overhead factor of Vector-Sparse relative to Compressed-Sparse for
/// the same degree sequence (ignoring the shared vertex index): the ratio of
/// padded lanes to edges. 1.0 means no overhead.
pub fn space_overhead(degrees: &[u32], lanes: usize) -> f64 {
    let eff = packing_efficiency(degrees, lanes);
    if eff == 0.0 {
        1.0
    } else {
        1.0 / eff
    }
}

/// Per-vector histogram of valid-lane counts (1..=lanes); slot `k-1` counts
/// vectors with exactly `k` valid lanes. Useful when reporting Figure 9
/// numbers in more detail than the paper's single average.
pub fn valid_lane_histogram(degrees: &[u32], lanes: usize) -> Vec<u64> {
    assert!(lanes >= 1);
    let mut hist = vec![0u64; lanes];
    for &d in degrees {
        let d = d as usize;
        if d == 0 {
            continue;
        }
        hist[lanes - 1] += (d / lanes) as u64;
        let rem = d % lanes;
        if rem > 0 {
            hist[rem - 1] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_packing() {
        assert_eq!(packing_efficiency(&[4, 8, 12], 4), 1.0);
    }

    #[test]
    fn quarter_packing() {
        assert_eq!(packing_efficiency(&[1, 1, 1], 4), 0.25);
    }

    #[test]
    fn paper_range_for_single_vector() {
        // "For a 4-element vector, it ranges from 25% ... to 100%".
        assert_eq!(packing_efficiency(&[1], 4), 0.25);
        assert_eq!(packing_efficiency(&[4], 4), 1.0);
    }

    #[test]
    fn zero_degree_vertices_do_not_dilute() {
        assert_eq!(packing_efficiency(&[0, 0, 4], 4), 1.0);
        assert_eq!(packing_efficiency(&[0, 0, 0], 4), 1.0);
    }

    #[test]
    fn efficiency_drops_with_wider_vectors() {
        // The paper's observation: "packing efficiency drops with wider
        // vectors" for fixed degrees.
        let degrees: Vec<u32> = (1..100).collect();
        let e4 = packing_efficiency(&degrees, 4);
        let e8 = packing_efficiency(&degrees, 8);
        let e16 = packing_efficiency(&degrees, 16);
        assert!(e4 >= e8 && e8 >= e16 && e4 > e16, "{e4} {e8} {e16}");
    }

    #[test]
    fn high_degree_graphs_pack_well() {
        // avg degree >= 25 => high efficiency with 4 lanes (paper: "well
        // over 90%" on real distributions). The uniform worst case at
        // degree 25 is exactly 25/28 ≈ 89.3%; a realistic mixture does
        // better because full vectors dominate.
        let uniform = vec![25u32; 1000];
        assert!((packing_efficiency(&uniform, 4) - 25.0 / 28.0).abs() < 1e-12);
        let mixed: Vec<u32> = (0..1000).map(|i| 20 + (i % 11)).collect();
        assert!(packing_efficiency(&mixed, 4) > 0.88);
    }

    #[test]
    fn vector_index_prefix_sums() {
        // degrees [0, 7, 2, 4] at 4 lanes -> [0, 0, 2, 3, 4].
        assert_eq!(vector_index(&[0, 7, 2, 4], 4), vec![0, 0, 2, 3, 4]);
        assert_eq!(vector_index(&[], 4), vec![0]);
    }

    #[test]
    fn overhead_is_reciprocal() {
        let degrees = [1u32, 2, 3];
        let eff = packing_efficiency(&degrees, 4);
        assert!((space_overhead(&degrees, 4) - 1.0 / eff).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_vectors() {
        // degree 7 -> one full vector + one 3-valid; degree 2 -> one 2-valid.
        let h = valid_lane_histogram(&[7, 2], 4);
        assert_eq!(h, vec![0, 1, 1, 1]);
        // Histogram reconstructs both edge and vector counts.
        let edges: u64 = h.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
        assert_eq!(edges, 9);
        let vectors: u64 = h.iter().sum();
        assert_eq!(vectors, 3);
    }

    proptest! {
        #[test]
        fn prop_efficiency_bounds(
            degrees in proptest::collection::vec(0u32..500, 1..200),
            lanes in prop_oneof![Just(4usize), Just(8), Just(16)],
        ) {
            let e = packing_efficiency(&degrees, lanes);
            prop_assert!(e > 0.0 && e <= 1.0);
            // Lower bound 1/lanes holds whenever any edge exists.
            if degrees.iter().any(|&d| d > 0) {
                prop_assert!(e >= 1.0 / lanes as f64 - 1e-12);
            }
        }

        #[test]
        fn prop_histogram_consistent_with_efficiency(
            degrees in proptest::collection::vec(0u32..100, 1..100),
        ) {
            let h = valid_lane_histogram(&degrees, 4);
            let edges: u64 = h.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
            let vectors: u64 = h.iter().sum();
            let expect_edges: u64 = degrees.iter().map(|&d| d as u64).sum();
            prop_assert_eq!(edges, expect_edges);
            if vectors > 0 {
                let eff = edges as f64 / (vectors * 4) as f64;
                prop_assert!((eff - packing_efficiency(&degrees, 4)).abs() < 1e-12);
            }
        }
    }
}

//! Graph substrate for the Grazelle reproduction.
//!
//! This crate provides everything below the processing engines:
//!
//! * [`EdgeList`] — a mutable, unordered edge container used while building
//!   or generating graphs.
//! * [`Csr`] — the two-level Compressed-Sparse structure from the paper's
//!   Figure 2 (an instance represents CSR when built over out-edges and CSC
//!   when built over in-edges).
//! * [`Graph`] — an immutable graph holding both orientations plus optional
//!   edge weights, the input type for every engine in the workspace.
//! * [`delta`] — append-only update segments ([`UpdateBatch`],
//!   [`DeltaSegments`]) layered over an immutable base graph; the substrate
//!   of the versioned graph handle in `grazelle-core`.
//! * [`gen`] — seeded synthetic generators (R-MAT, road-style mesh,
//!   Erdős–Rényi) and the named stand-ins for the paper's six datasets
//!   (Table 1).
//! * [`io`] — text and binary graph serialization.
//! * [`stats`] — degree statistics used by the packing-efficiency analysis
//!   (Figure 9) and by EXPERIMENTS.md.
//! * [`partition`] — contiguous edge-array partitioning used to simulate the
//!   paper's NUMA-node graph placement with thread groups.
//! * [`reorder`] — vertex relabeling transforms (degree order, BFS order)
//!   for the locality experiments.

pub mod checksum;
pub mod csr;
pub mod delta;
pub mod edgelist;
pub mod faults;
pub mod gen;
pub mod graph;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod stats;
pub mod types;

pub use csr::Csr;
pub use delta::{DeltaRecord, DeltaSegments, UpdateBatch};
pub use edgelist::EdgeList;
pub use graph::Graph;
pub use types::{EdgeId, GraphError, VertexId};

/// Convenient re-exports for downstream crates.
pub mod prelude {
    pub use crate::csr::Csr;
    pub use crate::edgelist::EdgeList;
    pub use crate::graph::Graph;
    pub use crate::types::{EdgeId, GraphError, VertexId};
}

//! Deterministic I/O fault injection and the bounded retry policy.
//!
//! The fault harness (ISSUE 2) needs to reproduce ingestion failures
//! exactly: a truncated file, a flipped bit at a known offset, a device
//! that returns `ErrorKind::Interrupted`/`WouldBlock` a few times before
//! succeeding. [`FaultyReader`] wraps any [`Read`] and injects those
//! failures from an [`IoFaultPlan`] — seeded and replayable, with no
//! wall-clock or ambient randomness in the plan itself. [`read_retrying`]
//! is the consumption side: the bounded retry + backoff loop every `load_*`
//! entry point uses, which turns transient errors into successful loads and
//! persistent ones into typed errors instead of hangs.

use std::io::{ErrorKind, Read};
use std::time::Duration;

/// SplitMix64 — the workspace-standard seeded generator (same scheme as the
/// vendored `rand` stand-in), used only to pick *which* transient error
/// kind each injected failure reports.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic plan of ingestion faults. Every field is explicit — the
/// plan contains no clock reads and no hidden RNG state, so the same plan
/// over the same bytes reproduces the same failure byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Seed for the transient-error-kind choice (`Interrupted` vs
    /// `WouldBlock`).
    pub seed: u64,
    /// Report end-of-file after this many bytes (truncation).
    pub truncate_at: Option<u64>,
    /// XOR the byte at this offset with this mask (bit flip / corruption).
    pub bitflip: Option<(u64, u8)>,
    /// Fail the first N `read` calls with a transient error before serving
    /// any data.
    pub transient_errors: u32,
}

impl IoFaultPlan {
    /// A plan that injects nothing (the clean-path control).
    pub fn clean() -> Self {
        IoFaultPlan::default()
    }

    /// Builder: seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: truncate after `n` bytes.
    pub fn with_truncation(mut self, n: u64) -> Self {
        self.truncate_at = Some(n);
        self
    }

    /// Builder: flip `mask` bits of the byte at `offset`.
    pub fn with_bitflip(mut self, offset: u64, mask: u8) -> Self {
        self.bitflip = Some((offset, mask));
        self
    }

    /// Builder: fail the first `n` reads transiently.
    pub fn with_transient_errors(mut self, n: u32) -> Self {
        self.transient_errors = n;
        self
    }
}

/// A [`Read`] adapter that injects the faults described by an
/// [`IoFaultPlan`] into the wrapped reader's byte stream.
pub struct FaultyReader<R> {
    inner: R,
    plan: IoFaultPlan,
    /// Bytes already served to the caller.
    offset: u64,
    /// Transient errors emitted so far.
    transients_emitted: u32,
    /// RNG state for the error-kind choice.
    rng: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with `plan`'s faults.
    pub fn new(inner: R, plan: IoFaultPlan) -> Self {
        let rng = plan.seed ^ 0xA076_1D64_78BD_642F;
        FaultyReader {
            inner,
            plan,
            offset: 0,
            transients_emitted: 0,
            rng,
        }
    }

    /// Number of transient errors injected so far (test observability).
    pub fn transients_emitted(&self) -> u32 {
        self.transients_emitted
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // Transient failures come first: a flaky device errors before it
        // delivers anything.
        if self.transients_emitted < self.plan.transient_errors {
            self.transients_emitted += 1;
            let kind = if splitmix64(&mut self.rng) & 1 == 0 {
                ErrorKind::Interrupted
            } else {
                ErrorKind::WouldBlock
            };
            return Err(std::io::Error::new(kind, "injected transient I/O error"));
        }
        // Truncation: clamp the visible stream length.
        let limit = match self.plan.truncate_at {
            Some(t) => {
                let left = t.saturating_sub(self.offset);
                if left == 0 {
                    return Ok(0); // injected EOF
                }
                (left as usize).min(buf.len())
            }
            None => buf.len(),
        };
        let n = self.inner.read(&mut buf[..limit])?;
        // Bit flip: corrupt the byte at the planned absolute offset if this
        // read covers it.
        if let Some((at, mask)) = self.plan.bitflip {
            if at >= self.offset && at < self.offset + n as u64 {
                buf[(at - self.offset) as usize] ^= mask;
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// Bounded retry + backoff policy for transient read errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Transient failures tolerated before giving up.
    pub max_retries: u32,
    /// Base backoff; attempt `k` sleeps `k * backoff` (linear, bounded).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// Default ingestion policy: 8 retries, 100µs base backoff — generous
    /// for `EINTR`-class noise, still sub-millisecond worst case per read.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_retries: 8,
        backoff: Duration::from_micros(100),
    };

    /// No retries at all (strict mode; tests of the give-up path).
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        backoff: Duration::ZERO,
    };
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// Outcome counters from a retried read (surfaced into bench reports so
/// clean runs can assert zero retries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient errors absorbed by retrying.
    pub retries: u32,
}

/// Reads `reader` to end, absorbing up to `policy.max_retries` transient
/// (`Interrupted`/`WouldBlock`) errors with linear backoff. Any other error
/// kind, or exhaustion of the retry budget, is returned to the caller.
pub fn read_retrying<R: Read>(
    mut reader: R,
    policy: RetryPolicy,
) -> std::io::Result<(Vec<u8>, RetryStats)> {
    let mut out = Vec::new();
    let mut buf = [0u8; 64 * 1024];
    let mut stats = RetryStats::default();
    loop {
        match reader.read(&mut buf) {
            Ok(0) => return Ok((out, stats)),
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock) => {
                if stats.retries >= policy.max_retries {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!(
                            "transient I/O error persisted after {} retries",
                            stats.retries
                        ),
                    ));
                }
                stats.retries += 1;
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * stats.retries);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<u8> {
        (0..1000u32).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn clean_plan_is_transparent() {
        let data = payload();
        let r = FaultyReader::new(&data[..], IoFaultPlan::clean());
        let (got, stats) = read_retrying(r, RetryPolicy::DEFAULT).unwrap();
        assert_eq!(got, data);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn truncation_cuts_the_stream() {
        let data = payload();
        let r = FaultyReader::new(&data[..], IoFaultPlan::clean().with_truncation(137));
        let (got, _) = read_retrying(r, RetryPolicy::DEFAULT).unwrap();
        assert_eq!(got, &data[..137]);
    }

    #[test]
    fn bitflip_corrupts_exactly_one_byte() {
        let data = payload();
        let r = FaultyReader::new(&data[..], IoFaultPlan::clean().with_bitflip(500, 0x40));
        let (got, _) = read_retrying(r, RetryPolicy::DEFAULT).unwrap();
        assert_eq!(got.len(), data.len());
        for (i, (a, b)) in got.iter().zip(&data).enumerate() {
            if i == 500 {
                assert_eq!(*a, b ^ 0x40);
            } else {
                assert_eq!(a, b, "byte {i} disturbed");
            }
        }
    }

    #[test]
    fn transient_errors_are_absorbed_by_retry() {
        let data = payload();
        let r = FaultyReader::new(
            &data[..],
            IoFaultPlan::clean().with_seed(7).with_transient_errors(3),
        );
        let policy = RetryPolicy {
            max_retries: 5,
            backoff: Duration::ZERO,
        };
        let (got, stats) = read_retrying(r, policy).unwrap();
        assert_eq!(got, data);
        assert_eq!(stats.retries, 3);
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_error() {
        let data = payload();
        let r = FaultyReader::new(
            &data[..],
            IoFaultPlan::clean().with_seed(7).with_transient_errors(10),
        );
        let policy = RetryPolicy {
            max_retries: 2,
            backoff: Duration::ZERO,
        };
        let err = read_retrying(r, policy).unwrap_err();
        assert!(matches!(
            err.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock
        ));
    }

    #[test]
    fn plans_are_deterministic() {
        let data = payload();
        let run = || {
            let r = FaultyReader::new(
                &data[..],
                IoFaultPlan::clean()
                    .with_seed(42)
                    .with_transient_errors(2)
                    .with_bitflip(3, 0x01)
                    .with_truncation(900),
            );
            read_retrying(r, RetryPolicy::DEFAULT).unwrap().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faults_compose_truncation_wins_over_flip_beyond_cut() {
        let data = payload();
        // Flip beyond the truncation point: never observed.
        let r = FaultyReader::new(
            &data[..],
            IoFaultPlan::clean()
                .with_truncation(100)
                .with_bitflip(500, 0xFF),
        );
        let (got, _) = read_retrying(r, RetryPolicy::DEFAULT).unwrap();
        assert_eq!(got, &data[..100]);
    }
}

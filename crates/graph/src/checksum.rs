//! CRC32C (Castagnoli) — the payload checksum of the binary graph format.
//!
//! Long-running pull engines read multi-hundred-GB binary inputs; a single
//! flipped bit in an edge pair silently corrupts every downstream result.
//! The binary format therefore appends a CRC32C trailer (ISSUE 2 "Hardened
//! I/O"). CRC32C is chosen over CRC32 (IEEE) because it is the checksum
//! hardware accelerates (`crc32` on SSE4.2), so a future intrinsic swap-in
//! changes no file bytes. This software implementation is table-driven
//! (slice-by-one): the offline build environment forbids new dependencies,
//! and ingestion is I/O-bound anyway.

/// The CRC32C (Castagnoli) reflected polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, generated once at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32C state. Feed bytes with [`Crc32c::update`], read the
/// digest with [`Crc32c::finish`].
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Fresh state (all-ones preset, per the CRC32C definition).
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (final xor applied; the state is
    /// not consumed, so interleaved `update`/`finish` is fine).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3720 §B.4 test vectors (iSCSI is where CRC32C originates).
    #[test]
    fn rfc3720_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let incrementing: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&incrementing), 0x46DD_794E);
        let decrementing: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&decrementing), 0x113F_DB5C);
    }

    #[test]
    fn canonical_check_string() {
        // The classic "123456789" check value for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32c(&data);
        for split in [0usize, 1, 7, 512, 1023, 1024] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            let mut corrupt = data.clone();
            corrupt[byte] ^= 0x10;
            assert_ne!(crc32c(&corrupt), base, "flip at byte {byte} undetected");
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }
}

//! Contiguous edge-array partitioning.
//!
//! Grazelle optimizes for NUMA by "dividing the edge vector array into
//! equally-sized pieces, plac\[ing\] each piece in locally-allocated memory on
//! each NUMA node, and generat\[ing\] a separate vertex index for each NUMA
//! node's piece" (§5). Because edges are grouped and sorted by top-level
//! vertex, each piece covers a contiguous *vertex* range as well. We
//! reproduce the partitioning logic exactly; physical NUMA placement is the
//! one thing this host cannot express (DESIGN.md §4.2), so partitions map to
//! *thread groups* instead.

use crate::csr::Csr;
use crate::types::VertexId;

/// One contiguous piece of an edge array, aligned to vertex boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePartition {
    /// First top-level vertex owned by this partition.
    pub first_vertex: VertexId,
    /// One past the last top-level vertex owned.
    pub last_vertex: VertexId,
    /// Half-open range into the flat edge array.
    pub edge_start: usize,
    pub edge_end: usize,
}

impl EdgePartition {
    /// Number of edges in the partition.
    pub fn num_edges(&self) -> usize {
        self.edge_end - self.edge_start
    }

    /// Number of top-level vertices in the partition.
    pub fn num_vertices(&self) -> usize {
        (self.last_vertex - self.first_vertex) as usize
    }

    /// Vertex range as a std range.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        self.first_vertex..self.last_vertex
    }
}

/// Splits a [`Csr`]'s edge array into `k` pieces of near-equal edge count,
/// each aligned to a top-level-vertex boundary. Every vertex belongs to
/// exactly one partition; empty trailing partitions are possible for tiny
/// graphs.
pub fn partition_by_edges(csr: &Csr, k: usize) -> Vec<EdgePartition> {
    partition_index(csr.index(), k)
}

/// [`partition_by_edges`] over any Compressed-Sparse-style vertex index
/// (`index.len() == num_vertices + 1`, monotone, `index[0] == 0`). Used
/// both for raw edge arrays and for Vector-Sparse *vector* arrays, whose
/// per-vertex index has the same shape — this is how Grazelle "divide\[s\]
/// the edge vector array into equally-sized pieces … and generate\[s\] a
/// separate vertex index for each NUMA node's piece" (§5).
pub fn partition_index(index: &[u64], k: usize) -> Vec<EdgePartition> {
    assert!(k >= 1, "need at least one partition");
    assert!(!index.is_empty() && index[0] == 0, "malformed index");
    let n = index.len() - 1;
    let m = *index.last().unwrap() as usize;
    let mut parts = Vec::with_capacity(k);
    let mut v = 0usize;
    for p in 0..k {
        let target_end = ((p + 1) as u128 * m as u128 / k as u128) as u64;
        let first_vertex = v as VertexId;
        let edge_start = index[v] as usize;
        // Advance until this partition's edge count reaches its share.
        // The last partition always absorbs the remainder.
        if p + 1 == k {
            v = n;
        } else {
            while v < n && index[v + 1] <= target_end {
                v += 1;
            }
            // Guarantee forward progress when a single vertex exceeds the
            // share (high-degree hubs).
            if (v as VertexId) == first_vertex && v < n {
                v += 1;
            }
        }
        parts.push(EdgePartition {
            first_vertex,
            last_vertex: v as VertexId,
            edge_start,
            edge_end: index[v] as usize,
        });
    }
    parts
}

/// Splits the vertex range `0..n` into `k` equal pieces (the paper's
/// statically-scheduled Vertex phase).
pub fn partition_by_vertices(n: usize, k: usize) -> Vec<std::ops::Range<VertexId>> {
    assert!(k >= 1);
    (0..k)
        .map(|p| {
            let start = (p as u128 * n as u128 / k as u128) as VertexId;
            let end = ((p + 1) as u128 * n as u128 / k as u128) as VertexId;
            start..end
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::gen::rmat::{rmat, RmatConfig};

    fn csr_of(pairs: &[(u32, u32)], n: usize) -> Csr {
        Csr::from_edgelist_by_src(&EdgeList::from_pairs(n, pairs).unwrap())
    }

    fn check_cover(csr: &Csr, parts: &[EdgePartition]) {
        assert_eq!(parts[0].first_vertex, 0);
        assert_eq!(parts[0].edge_start, 0);
        for w in parts.windows(2) {
            assert_eq!(w[0].last_vertex, w[1].first_vertex);
            assert_eq!(w[0].edge_end, w[1].edge_start);
        }
        assert_eq!(
            parts.last().unwrap().last_vertex as usize,
            csr.num_vertices()
        );
        assert_eq!(parts.last().unwrap().edge_end, csr.num_edges());
    }

    #[test]
    fn single_partition_covers_everything() {
        let csr = csr_of(&[(0, 1), (1, 2), (2, 0)], 3);
        let parts = partition_by_edges(&csr, 1);
        assert_eq!(parts.len(), 1);
        check_cover(&csr, &parts);
        assert_eq!(parts[0].num_edges(), 3);
    }

    #[test]
    fn partitions_tile_the_edge_array() {
        let el = rmat(&RmatConfig::graph500(10, 8.0, 13));
        let csr = Csr::from_edgelist_by_src(&el);
        for k in [2, 3, 4, 7, 16] {
            let parts = partition_by_edges(&csr, k);
            assert_eq!(parts.len(), k);
            check_cover(&csr, &parts);
        }
    }

    #[test]
    fn partitions_are_balanced_on_uniform_graph() {
        let pairs: Vec<_> = (0..1000u32).map(|v| (v, (v + 1) % 1000)).collect();
        let csr = csr_of(&pairs, 1000);
        let parts = partition_by_edges(&csr, 4);
        for p in &parts {
            assert_eq!(p.num_edges(), 250);
        }
    }

    #[test]
    fn hub_vertex_does_not_stall_partitioning() {
        // Vertex 0 owns nearly all edges; partitioning must still cover all
        // vertices and make progress.
        let mut pairs = vec![];
        for d in 1..100u32 {
            pairs.push((0, d));
        }
        pairs.push((50, 51));
        let csr = csr_of(&pairs, 100);
        let parts = partition_by_edges(&csr, 4);
        check_cover(&csr, &parts);
        assert!(parts[0].num_edges() >= 99);
    }

    #[test]
    fn vertex_partitioning_is_equal_and_covering() {
        let parts = partition_by_vertices(10, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], 0..3);
        assert_eq!(parts[1], 3..6);
        assert_eq!(parts[2], 6..10);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn partition_index_works_on_raw_indexes() {
        // A vector-array-style index: vertex 0 owns 2 vectors, 1 owns 0,
        // 2 owns 3, 3 owns 1.
        let index = [0u64, 2, 2, 5, 6];
        let parts = partition_index(&index, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].edge_start, 0);
        assert_eq!(parts.last().unwrap().edge_end, 6);
        for w in parts.windows(2) {
            assert_eq!(w[0].edge_end, w[1].edge_start);
            assert_eq!(w[0].last_vertex, w[1].first_vertex);
        }
        let covered: usize = parts.iter().map(|p| p.num_vertices()).sum();
        assert_eq!(covered, 4);
    }

    #[test]
    fn more_partitions_than_vertices() {
        let csr = csr_of(&[(0, 1)], 2);
        let parts = partition_by_edges(&csr, 8);
        check_cover(&csr, &parts);
        let covered: usize = parts.iter().map(|p| p.num_vertices()).sum();
        assert_eq!(covered, 2);
    }
}

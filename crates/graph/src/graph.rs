//! The immutable, dual-orientation graph consumed by all engines.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::types::{GraphError, VertexId};
use grazelle_sched::ThreadPool;

/// An immutable directed graph holding both edge groupings.
///
/// Like Grazelle (and Ligra/Polymer before it), every engine needs the edges
/// *grouped by source* (for push) and *grouped by destination* (for pull), so
/// the graph stores one [`Csr`] per orientation. Both are built once from the
/// same [`EdgeList`], neighbor-sorted so that layouts are deterministic.
#[derive(Debug, Clone)]
pub struct Graph {
    out: Csr,
    inn: Csr,
    name: String,
}

impl Graph {
    /// Builds a graph from an edge list. Duplicate edges are kept as-is;
    /// call [`EdgeList::sort_and_dedup`] first if you need simple graphs.
    pub fn from_edgelist(el: &EdgeList) -> Result<Self, GraphError> {
        if el.num_vertices() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let mut out = Csr::from_edgelist_by_src(el);
        let mut inn = Csr::from_edgelist_by_dst(el);
        out.sort_neighbors();
        inn.sort_neighbors();
        Ok(Graph {
            out,
            inn,
            name: String::new(),
        })
    }

    /// Parallel [`Graph::from_edgelist`]: both orientations are built with
    /// the parallel counting sort and neighbor-sorted on the pool. The
    /// result is bit-identical to the sequential build.
    pub fn from_edgelist_parallel(el: &EdgeList, pool: &ThreadPool) -> Result<Self, GraphError> {
        if el.num_vertices() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let mut out = Csr::from_edgelist_by_src_parallel(el, pool);
        let mut inn = Csr::from_edgelist_by_dst_parallel(el, pool);
        out.sort_neighbors_parallel(pool);
        inn.sort_neighbors_parallel(pool);
        Ok(Graph {
            out,
            inn,
            name: String::new(),
        })
    }

    /// Builds directly from pre-validated orientations. `out` and `inn` must
    /// describe the same edge multiset; this is checked cheaply (counts), not
    /// exhaustively.
    pub fn from_orientations(out: Csr, inn: Csr, name: &str) -> Result<Self, GraphError> {
        if out.num_vertices() != inn.num_vertices() {
            return Err(GraphError::MalformedIndex(format!(
                "orientation vertex counts disagree: {} vs {}",
                out.num_vertices(),
                inn.num_vertices()
            )));
        }
        if out.num_edges() != inn.num_edges() {
            return Err(GraphError::MalformedIndex(format!(
                "orientation edge counts disagree: {} vs {}",
                out.num_edges(),
                inn.num_edges()
            )));
        }
        Ok(Graph {
            out,
            inn,
            name: name.to_string(),
        })
    }

    /// Attaches a human-readable name (used in experiment output).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The graph's name ("" when unset).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// True when edge weights are attached.
    pub fn is_weighted(&self) -> bool {
        self.out.weights().is_some()
    }

    /// Edges grouped by source (CSR) — the push engine's structure.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// Edges grouped by destination (CSC) — the pull engine's structure.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.inn
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.inn.degree(v)
    }

    /// Out-neighbors of `v`, sorted.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbors of `v`, sorted.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inn.neighbors(v)
    }

    /// Average degree |E| / |V|.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_vertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let el =
            EdgeList::from_pairs(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 0), (3, 1)]).unwrap();
        Graph::from_edgelist(&el).unwrap().with_name("sample")
    }

    #[test]
    fn orientations_are_consistent() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        // Every out-edge (s,d) appears as an in-edge of d with source s.
        for s in 0..g.num_vertices() as VertexId {
            for &d in g.out_neighbors(s) {
                assert!(
                    g.in_neighbors(d).contains(&s),
                    "edge ({s},{d}) missing from CSC"
                );
            }
        }
        // Totals agree.
        let out_total: u32 = (0..4).map(|v| g.out_degree(v)).sum();
        let in_total: u32 = (0..4).map(|v| g.in_degree(v)).sum();
        assert_eq!(out_total, 6);
        assert_eq!(in_total, 6);
    }

    #[test]
    fn named() {
        assert_eq!(sample().name(), "sample");
    }

    #[test]
    fn empty_vertex_set_rejected() {
        let el = EdgeList::new(0);
        assert!(matches!(
            Graph::from_edgelist(&el),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn mismatched_orientations_rejected() {
        let el = EdgeList::from_pairs(3, &[(0, 1)]).unwrap();
        let el2 = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let out = Csr::from_edgelist_by_src(&el);
        let inn = Csr::from_edgelist_by_dst(&el2);
        assert!(Graph::from_orientations(out, inn, "bad").is_err());
    }

    #[test]
    fn avg_degree() {
        assert!((sample().avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_graph_carries_weights_in_both_orientations() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 1.0).unwrap();
        el.push_weighted(1, 2, 2.0).unwrap();
        el.push_weighted(0, 2, 3.0).unwrap();
        let g = Graph::from_edgelist(&el).unwrap();
        assert!(g.is_weighted());
        assert!(g.out_csr().weights().is_some());
        assert!(g.in_csr().weights().is_some());
        // In-edges of vertex 2: from 0 (3.0) and 1 (2.0); neighbors sorted.
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_csr().neighbor_weights(2).unwrap(), &[3.0, 2.0]);
    }
}

//! Degree statistics.
//!
//! These feed Table 1 of EXPERIMENTS.md (dataset inventory) and supply the
//! degree arrays consumed by the packing-efficiency analysis (Figure 9).

use crate::graph::Graph;

/// Summary statistics over a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    pub min: u32,
    pub max: u32,
    pub mean: f64,
    pub median: u32,
    /// 99th-percentile degree.
    pub p99: u32,
    /// Fraction of vertices with degree zero.
    pub zero_fraction: f64,
    /// Coefficient of variation (stddev / mean); a cheap skew proxy — ~0 for
    /// meshes, >1 for scale-free graphs.
    pub cv: f64,
}

impl DegreeStats {
    /// Computes statistics from a degree array.
    pub fn from_degrees(degrees: &[u32]) -> DegreeStats {
        assert!(!degrees.is_empty(), "empty degree array");
        let n = degrees.len();
        let mut sorted = degrees.to_vec();
        sorted.sort_unstable();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        let mean = total as f64 / n as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let zero = degrees.iter().filter(|&&d| d == 0).count();
        DegreeStats {
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            median: sorted[n / 2],
            p99: sorted[((n as f64 * 0.99) as usize).min(n - 1)],
            zero_fraction: zero as f64 / n as f64,
            cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        }
    }

    /// Renders the statistics as a JSON object (hand-rolled; see
    /// [`GraphSummary::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"min\":{},\"max\":{},\"mean\":{},\"median\":{},\"p99\":{},\
             \"zero_fraction\":{},\"cv\":{}}}",
            self.min, self.max, self.mean, self.median, self.p99, self.zero_fraction, self.cv
        )
    }
}

/// Full dataset-inventory row (Table 1 of EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct GraphSummary {
    pub name: String,
    pub num_vertices: usize,
    pub num_edges: usize,
    pub avg_degree: f64,
    pub out_degrees: DegreeStats,
    pub in_degrees: DegreeStats,
}

impl GraphSummary {
    /// Summarizes a graph.
    pub fn of(g: &Graph) -> GraphSummary {
        GraphSummary {
            name: g.name().to_string(),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            out_degrees: DegreeStats::from_degrees(&g.out_csr().degrees()),
            in_degrees: DegreeStats::from_degrees(&g.in_csr().degrees()),
        }
    }

    /// Renders the row as a JSON object (hand-rolled: the offline build has
    /// no serde; names containing `"` or `\` are escaped).
    pub fn to_json(&self) -> String {
        let escaped: String = self
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        format!(
            "{{\"name\":\"{}\",\"num_vertices\":{},\"num_edges\":{},\"avg_degree\":{},\
             \"out_degrees\":{},\"in_degrees\":{}}}",
            escaped,
            self.num_vertices,
            self.num_edges,
            self.avg_degree,
            self.out_degrees.to_json(),
            self.in_degrees.to_json()
        )
    }
}

/// Histogram of `log2(degree+1)` buckets — the shape plotted in degree
/// distribution figures.
pub fn log2_degree_histogram(degrees: &[u32]) -> Vec<usize> {
    let mut hist = vec![0usize; 33];
    for &d in degrees {
        let bucket = 63 - (d as u64 + 1).leading_zeros() as usize;
        hist[bucket.min(32)] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn stats_of_constant_sequence() {
        let s = DegreeStats::from_degrees(&[3, 3, 3, 3]);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3);
        assert_eq!(s.p99, 3);
        assert_eq!(s.zero_fraction, 0.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn stats_of_skewed_sequence() {
        let mut deg = vec![1u32; 99];
        deg.push(1000);
        let s = DegreeStats::from_degrees(&deg);
        assert_eq!(s.max, 1000);
        assert_eq!(s.median, 1);
        assert!(s.cv > 5.0, "cv {} should flag skew", s.cv);
    }

    #[test]
    fn zero_fraction() {
        let s = DegreeStats::from_degrees(&[0, 0, 1, 1]);
        assert_eq!(s.zero_fraction, 0.5);
    }

    #[test]
    fn summary_of_graph() {
        let el = EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let g = crate::graph::Graph::from_edgelist(&el)
            .unwrap()
            .with_name("tri");
        let s = GraphSummary::of(&g);
        assert_eq!(s.name, "tri");
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.out_degrees.max, 2);
        assert_eq!(s.in_degrees.max, 2);
    }

    #[test]
    fn histogram_buckets() {
        // degrees 0,1,3,7 -> log2(d+1) buckets 0,1,2,3
        let h = log2_degree_histogram(&[0, 1, 3, 7]);
        assert_eq!(h, vec![1, 1, 1, 1]);
    }

    #[test]
    fn histogram_trims_trailing_zeros() {
        let h = log2_degree_histogram(&[0, 0]);
        assert_eq!(h, vec![2]);
    }

    #[test]
    #[should_panic(expected = "empty degree array")]
    fn empty_degrees_panic() {
        DegreeStats::from_degrees(&[]);
    }

    #[test]
    fn stats_serialize_to_json() {
        let el = EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let g = crate::graph::Graph::from_edgelist(&el)
            .unwrap()
            .with_name("tri\"x");
        let json = GraphSummary::of(&g).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"tri\\\"x\""), "{json}");
        assert!(json.contains("\"num_vertices\":3"));
        assert!(json.contains("\"out_degrees\":{\"min\":"));
    }
}

//! The two-level Compressed-Sparse structure (paper Figure 2).
//!
//! One [`Csr`] instance represents either orientation: built over out-edges
//! it is Compressed-Sparse-Row (CSR), built over in-edges it is
//! Compressed-Sparse-Column (CSC). The *vertex index* holds each top-level
//! vertex's starting position in the flat edge array; one endpoint of every
//! edge is implied by index position, the other is stored in the edge array.

use crate::edgelist::EdgeList;
use crate::types::{EdgeId, GraphError, VertexId};
use grazelle_sched::ThreadPool;

/// Compressed-Sparse adjacency: `index.len() == num_vertices + 1`,
/// `edges.len() == index[num_vertices]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    index: Vec<EdgeId>,
    edges: Vec<VertexId>,
    weights: Option<Vec<f64>>,
}

impl Csr {
    /// Builds a CSR grouped by **source** from an edge list (counting sort;
    /// O(|V| + |E|)). Neighbor order within a vertex follows the edge list.
    pub fn from_edgelist_by_src(el: &EdgeList) -> Self {
        Self::build(el, true)
    }

    /// Builds a CSC (grouped by **destination**) from an edge list. The
    /// stored endpoint of each edge is then the *source* vertex.
    pub fn from_edgelist_by_dst(el: &EdgeList) -> Self {
        Self::build(el, false)
    }

    fn build(el: &EdgeList, by_src: bool) -> Self {
        let n = el.num_vertices();
        let m = el.num_edges();
        let mut index = vec![0u64; n + 1];
        for &(s, d) in el.edges() {
            let key = if by_src { s } else { d };
            index[key as usize + 1] += 1;
        }
        for i in 0..n {
            index[i + 1] += index[i];
        }
        let mut cursor = index.clone();
        let mut edges = vec![0 as VertexId; m];
        let mut weights = el.weights().map(|_| vec![0.0f64; m]);
        for (i, &(s, d)) in el.edges().iter().enumerate() {
            let (key, other) = if by_src { (s, d) } else { (d, s) };
            let pos = cursor[key as usize] as usize;
            cursor[key as usize] += 1;
            edges[pos] = other;
            if let (Some(w_out), Some(w_in)) = (&mut weights, el.weights()) {
                w_out[pos] = w_in[i];
            }
        }
        Csr {
            index,
            edges,
            weights,
        }
    }

    /// Parallel [`Csr::from_edgelist_by_src`] on a [`ThreadPool`].
    /// Bit-identical to the sequential build; see [`Csr::build_parallel`].
    pub fn from_edgelist_by_src_parallel(el: &EdgeList, pool: &ThreadPool) -> Self {
        Self::build_parallel(el, true, pool)
    }

    /// Parallel [`Csr::from_edgelist_by_dst`] on a [`ThreadPool`].
    pub fn from_edgelist_by_dst_parallel(el: &EdgeList, pool: &ThreadPool) -> Self {
        Self::build_parallel(el, false, pool)
    }

    /// Parallel counting sort. Three phases:
    ///
    /// 1. **Histogram** — each thread counts key degrees over a disjoint
    ///    edge sub-range into a thread-local histogram.
    /// 2. **Prefix merge** — one sequential pass sums the histograms into
    ///    the vertex index (identical to the sequential index by
    ///    commutativity of the per-key sums).
    /// 3. **Scatter** — the key space is split into per-thread ranges of
    ///    near-equal edge count ([`crate::partition::partition_index`]).
    ///    A key range `[a, b)` owns the *contiguous* output region
    ///    `index[a]..index[b]`, handed to its thread as a plain
    ///    `split_at_mut` slice — no aliasing, no `unsafe`. Each thread
    ///    scans the full edge list in order and writes only its own keys,
    ///    so within-vertex edge order is the edge-list order, exactly as in
    ///    the sequential scatter.
    fn build_parallel(el: &EdgeList, by_src: bool, pool: &ThreadPool) -> Self {
        let t = pool.num_threads();
        if t == 1 {
            return Self::build(el, by_src);
        }
        let n = el.num_vertices();
        let m = el.num_edges();
        let all = el.edges();
        let w_in = el.weights();
        // Phase 1: per-thread histograms over disjoint edge sub-ranges.
        let hists: Vec<Vec<u32>> = pool.run_map_with(|ctx| {
            let lo = m * ctx.global_id / t;
            let hi = m * (ctx.global_id + 1) / t;
            let mut h = vec![0u32; n];
            for &(s, d) in &all[lo..hi] {
                let key = if by_src { s } else { d };
                h[key as usize] += 1;
            }
            h
        });
        // Phase 2: sequential prefix-sum merge into the vertex index.
        let mut index = vec![0u64; n + 1];
        for v in 0..n {
            let deg: u64 = hists.iter().map(|h| h[v] as u64).sum();
            index[v + 1] = index[v] + deg;
        }
        drop(hists);
        // Phase 3: parallel scatter over disjoint destination key ranges.
        let parts = crate::partition::partition_index(&index, t);
        let mut edges = vec![0 as VertexId; m];
        let mut weights = w_in.map(|_| vec![0.0f64; m]);
        let mut tasks = Vec::with_capacity(t);
        {
            let mut erest: &mut [VertexId] = &mut edges;
            let mut wrest: Option<&mut [f64]> = weights.as_deref_mut();
            for p in &parts {
                let len = p.num_edges();
                let (ehead, etail) = erest.split_at_mut(len);
                erest = etail;
                let whead = match wrest.take() {
                    Some(w) => {
                        let (a, b) = w.split_at_mut(len);
                        wrest = Some(b);
                        Some(a)
                    }
                    None => None,
                };
                tasks.push((*p, ehead, whead));
            }
        }
        pool.run_tasks(tasks, |_, (part, eslice, mut wslice)| {
            let key_lo = part.first_vertex;
            let key_hi = part.last_vertex;
            if key_lo == key_hi {
                return;
            }
            let base = index[key_lo as usize];
            // Per-key write cursors, relative to this partition's slice.
            let mut cursor: Vec<usize> = index[key_lo as usize..key_hi as usize]
                .iter()
                .map(|&e| (e - base) as usize)
                .collect();
            for (i, &(s, d)) in all.iter().enumerate() {
                let (key, other) = if by_src { (s, d) } else { (d, s) };
                if key >= key_lo && key < key_hi {
                    let c = &mut cursor[(key - key_lo) as usize];
                    eslice[*c] = other;
                    if let Some(w_out) = wslice.as_mut() {
                        w_out[*c] = w_in.expect("weighted task without weights")[i];
                    }
                    *c += 1;
                }
            }
        });
        let built = Csr {
            index,
            edges,
            weights,
        };
        debug_assert_eq!(
            built,
            Self::build(el, by_src),
            "parallel CSR build diverged from sequential"
        );
        built
    }

    /// Constructs a CSR directly from raw parts, validating the index.
    pub fn from_parts(
        index: Vec<EdgeId>,
        edges: Vec<VertexId>,
        weights: Option<Vec<f64>>,
    ) -> Result<Self, GraphError> {
        if index.is_empty() {
            return Err(GraphError::MalformedIndex("index is empty".into()));
        }
        if index[0] != 0 {
            return Err(GraphError::MalformedIndex(format!(
                "index[0] = {} (expected 0)",
                index[0]
            )));
        }
        for w in index.windows(2) {
            if w[1] < w[0] {
                return Err(GraphError::MalformedIndex(format!(
                    "index decreases: {} -> {}",
                    w[0], w[1]
                )));
            }
        }
        let last = *index.last().unwrap();
        if last != edges.len() as u64 {
            return Err(GraphError::MalformedIndex(format!(
                "index covers {last} edges but edge array has {}",
                edges.len()
            )));
        }
        if let Some(w) = &weights {
            if w.len() != edges.len() {
                return Err(GraphError::WeightLengthMismatch {
                    edges: edges.len(),
                    weights: w.len(),
                });
            }
        }
        let n = (index.len() - 1) as u64;
        if let Some(&bad) = edges.iter().find(|&&v| v as u64 >= n) {
            return Err(GraphError::VertexOutOfRange {
                vertex: bad as u64,
                num_vertices: n,
            });
        }
        Ok(Csr {
            index,
            edges,
            weights,
        })
    }

    /// Number of top-level vertices.
    pub fn num_vertices(&self) -> usize {
        self.index.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The vertex index array (length `num_vertices + 1`).
    pub fn index(&self) -> &[EdgeId] {
        &self.index
    }

    /// The flat edge (neighbor) array.
    pub fn edges(&self) -> &[VertexId] {
        &self.edges
    }

    /// Edge weights aligned with [`Csr::edges`], if present.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Degree of `v` under this orientation.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.index[v as usize + 1] - self.index[v as usize]) as u32
    }

    /// Degrees of all vertices.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .collect()
    }

    /// Half-open edge-array range owned by `v`.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.index[v as usize] as usize..self.index[v as usize + 1] as usize
    }

    /// Neighbors of `v` (the stored endpoints of its edges).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.edges[self.edge_range(v)]
    }

    /// Weights of `v`'s edges, if the graph is weighted.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[f64]> {
        let r = self.edge_range(v);
        self.weights.as_ref().map(|w| &w[r])
    }

    /// Iterates `(top_level_vertex, stored_endpoint, edge_index)` over all
    /// edges in edge-array order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, usize)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.edge_range(v as VertexId)
                .map(move |e| (v as VertexId, self.edges[e], e))
        })
    }

    /// Sorts each vertex's neighbor list in place (weights permuted along).
    pub fn sort_neighbors(&mut self) {
        for v in 0..self.num_vertices() {
            let r = self.edge_range(v as VertexId);
            match &mut self.weights {
                None => self.edges[r].sort_unstable(),
                Some(w) => {
                    let mut pairs: Vec<(VertexId, f64)> = self.edges[r.clone()]
                        .iter()
                        .copied()
                        .zip(w[r.clone()].iter().copied())
                        .collect();
                    pairs.sort_unstable_by_key(|&(v, _)| v);
                    for (i, (nv, nw)) in pairs.into_iter().enumerate() {
                        self.edges[r.start + i] = nv;
                        w[r.start + i] = nw;
                    }
                }
            }
        }
    }

    /// Parallel [`Csr::sort_neighbors`]: vertex ranges of near-equal edge
    /// count are sorted concurrently. Each partition's edge (and weight)
    /// region is contiguous, so the distribution is a plain `split_at_mut`.
    /// `sort_unstable` is deterministic for a fixed input slice and every
    /// per-vertex slice is identical to the sequential call's, so the result
    /// is bit-identical to [`Csr::sort_neighbors`].
    pub fn sort_neighbors_parallel(&mut self, pool: &ThreadPool) {
        let t = pool.num_threads();
        if t == 1 {
            return self.sort_neighbors();
        }
        let parts = crate::partition::partition_index(&self.index, t);
        let index = &self.index;
        let weighted = self.weights.is_some();
        let mut tasks = Vec::with_capacity(t);
        {
            let mut erest: &mut [VertexId] = &mut self.edges;
            let mut wrest: Option<&mut [f64]> = self.weights.as_deref_mut();
            for p in &parts {
                let len = p.num_edges();
                let (ehead, etail) = erest.split_at_mut(len);
                erest = etail;
                let whead = match wrest.take() {
                    Some(w) => {
                        let (a, b) = w.split_at_mut(len);
                        wrest = Some(b);
                        Some(a)
                    }
                    None => None,
                };
                tasks.push((*p, ehead, whead));
            }
        }
        pool.run_tasks(tasks, |_, (part, eslice, mut wslice)| {
            if part.first_vertex == part.last_vertex {
                return;
            }
            let base = index[part.first_vertex as usize];
            for v in part.vertices() {
                let lo = (index[v as usize] - base) as usize;
                let hi = (index[v as usize + 1] - base) as usize;
                match (weighted, wslice.as_mut()) {
                    (false, _) => eslice[lo..hi].sort_unstable(),
                    (true, Some(w)) => {
                        let mut pairs: Vec<(VertexId, f64)> = eslice[lo..hi]
                            .iter()
                            .copied()
                            .zip(w[lo..hi].iter().copied())
                            .collect();
                        pairs.sort_unstable_by_key(|&(v, _)| v);
                        for (i, (nv, nw)) in pairs.into_iter().enumerate() {
                            eslice[lo + i] = nv;
                            w[lo + i] = nw;
                        }
                    }
                    (true, None) => unreachable!("weighted CSR lost its weight slice"),
                }
            }
        });
    }

    /// Returns the transposed structure: if `self` groups by source, the
    /// result groups by destination (and vice versa).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let m = self.num_edges();
        let mut index = vec![0u64; n + 1];
        for &t in &self.edges {
            index[t as usize + 1] += 1;
        }
        for i in 0..n {
            index[i + 1] += index[i];
        }
        let mut cursor = index.clone();
        let mut edges = vec![0 as VertexId; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0.0f64; m]);
        for v in 0..n {
            for e in self.edge_range(v as VertexId) {
                let t = self.edges[e] as usize;
                let pos = cursor[t] as usize;
                cursor[t] += 1;
                edges[pos] = v as VertexId;
                if let (Some(w_out), Some(w_in)) = (&mut weights, &self.weights) {
                    w_out[pos] = w_in[e];
                }
            }
        }
        Csr {
            index,
            edges,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_el() -> EdgeList {
        // 0->{1,2}, 1->{2}, 3->{0,2}, 4->{}
        EdgeList::from_pairs(5, &[(0, 1), (0, 2), (1, 2), (3, 0), (3, 2)]).unwrap()
    }

    #[test]
    fn build_by_src_matches_figure2_shape() {
        let csr = Csr::from_edgelist_by_src(&sample_el());
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.index(), &[0, 2, 3, 3, 5, 5]);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[] as &[VertexId]);
        assert_eq!(csr.neighbors(3), &[0, 2]);
        assert_eq!(csr.neighbors(4), &[] as &[VertexId]);
    }

    #[test]
    fn build_by_dst_groups_in_edges() {
        let csc = Csr::from_edgelist_by_dst(&sample_el());
        assert_eq!(csc.neighbors(2).len(), 3); // in-neighbors of 2: 0,1,3
        let mut nbrs = csc.neighbors(2).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, &[0, 1, 3]);
        assert_eq!(csc.degree(0), 1);
        assert_eq!(csc.degree(4), 0);
    }

    #[test]
    fn degrees_sum_to_edge_count() {
        let csr = Csr::from_edgelist_by_src(&sample_el());
        let total: u64 = csr.degrees().iter().map(|&d| d as u64).sum();
        assert_eq!(total, csr.num_edges() as u64);
    }

    #[test]
    fn transpose_of_transpose_is_identity_after_sort() {
        let mut csr = Csr::from_edgelist_by_src(&sample_el());
        csr.sort_neighbors();
        let mut back = csr.transpose().transpose();
        back.sort_neighbors();
        assert_eq!(csr, back);
    }

    #[test]
    fn transpose_matches_by_dst_build() {
        let el = sample_el();
        let mut a = Csr::from_edgelist_by_src(&el).transpose();
        let mut b = Csr::from_edgelist_by_dst(&el);
        a.sort_neighbors();
        b.sort_neighbors();
        assert_eq!(a, b);
    }

    #[test]
    fn weights_follow_edges_through_build_and_transpose() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 10.0).unwrap();
        el.push_weighted(0, 2, 20.0).unwrap();
        el.push_weighted(2, 1, 30.0).unwrap();
        let csr = Csr::from_edgelist_by_src(&el);
        assert_eq!(csr.neighbor_weights(0).unwrap(), &[10.0, 20.0]);
        assert_eq!(csr.neighbor_weights(2).unwrap(), &[30.0]);
        let csc = csr.transpose();
        // In-edges of 1: from 0 (w=10) and from 2 (w=30).
        let nbrs = csc.neighbors(1);
        let ws = csc.neighbor_weights(1).unwrap();
        let pairs: std::collections::HashMap<_, _> =
            nbrs.iter().copied().zip(ws.iter().copied()).collect();
        assert_eq!(pairs[&0], 10.0);
        assert_eq!(pairs[&2], 30.0);
    }

    #[test]
    fn from_parts_validation() {
        assert!(Csr::from_parts(vec![], vec![], None).is_err());
        assert!(Csr::from_parts(vec![1, 2], vec![0, 0], None).is_err()); // index[0] != 0
        assert!(Csr::from_parts(vec![0, 2, 1], vec![0, 0], None).is_err()); // decreasing
        assert!(Csr::from_parts(vec![0, 1], vec![0, 0], None).is_err()); // wrong coverage
        assert!(Csr::from_parts(vec![0, 1], vec![5], None).is_err()); // endpoint out of range
        assert!(Csr::from_parts(vec![0, 1], vec![0], Some(vec![1.0, 2.0])).is_err());
        assert!(Csr::from_parts(vec![0, 1], vec![0], Some(vec![1.0])).is_ok());
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let el = sample_el();
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::single_group(threads);
            assert_eq!(
                Csr::from_edgelist_by_src_parallel(&el, &pool),
                Csr::from_edgelist_by_src(&el),
                "by_src at {threads} threads"
            );
            assert_eq!(
                Csr::from_edgelist_by_dst_parallel(&el, &pool),
                Csr::from_edgelist_by_dst(&el),
                "by_dst at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_build_carries_weights() {
        let mut el = EdgeList::new(4);
        el.push_weighted(0, 1, 10.0).unwrap();
        el.push_weighted(3, 1, 20.0).unwrap();
        el.push_weighted(0, 2, 30.0).unwrap();
        el.push_weighted(3, 0, 40.0).unwrap();
        let pool = ThreadPool::single_group(3);
        assert_eq!(
            Csr::from_edgelist_by_src_parallel(&el, &pool),
            Csr::from_edgelist_by_src(&el)
        );
        assert_eq!(
            Csr::from_edgelist_by_dst_parallel(&el, &pool),
            Csr::from_edgelist_by_dst(&el)
        );
    }

    #[test]
    fn parallel_build_handles_empty_and_hub_shapes() {
        let pool = ThreadPool::single_group(4);
        // No edges at all.
        let empty = EdgeList::new(3);
        assert_eq!(
            Csr::from_edgelist_by_src_parallel(&empty, &pool),
            Csr::from_edgelist_by_src(&empty)
        );
        // One hub vertex owning every edge (stress for key-range balance).
        let mut pairs = vec![];
        for d in 1..50u32 {
            pairs.push((0, d));
        }
        let hub = EdgeList::from_pairs(50, &pairs).unwrap();
        assert_eq!(
            Csr::from_edgelist_by_src_parallel(&hub, &pool),
            Csr::from_edgelist_by_src(&hub)
        );
        assert_eq!(
            Csr::from_edgelist_by_dst_parallel(&hub, &pool),
            Csr::from_edgelist_by_dst(&hub)
        );
    }

    #[test]
    fn parallel_sort_neighbors_matches_sequential() {
        let mut el = EdgeList::new(6);
        el.push_weighted(0, 5, 1.0).unwrap();
        el.push_weighted(0, 2, 2.0).unwrap();
        el.push_weighted(0, 4, 3.0).unwrap();
        el.push_weighted(3, 1, 4.0).unwrap();
        el.push_weighted(3, 0, 5.0).unwrap();
        let pool = ThreadPool::single_group(3);
        let mut seq = Csr::from_edgelist_by_src(&el);
        let mut par = seq.clone();
        seq.sort_neighbors();
        par.sort_neighbors_parallel(&pool);
        assert_eq!(seq, par);
    }

    #[test]
    fn iter_edges_covers_all_in_order() {
        let csr = Csr::from_edgelist_by_src(&sample_el());
        let collected: Vec<_> = csr.iter_edges().collect();
        assert_eq!(
            collected,
            vec![(0, 1, 0), (0, 2, 1), (1, 2, 2), (3, 0, 3), (3, 2, 4)]
        );
    }

    #[test]
    fn empty_vertex_set_is_representable() {
        let el = EdgeList::new(1);
        let csr = Csr::from_edgelist_by_src(&el);
        assert_eq!(csr.num_vertices(), 1);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.neighbors(0), &[] as &[VertexId]);
    }
}

//! Fundamental identifier types and the crate error type.

use std::fmt;

/// Vertex identifier.
///
/// The substrate stores vertices as `u32` (the stand-in datasets top out in
/// the low millions of vertices). The Vector-Sparse format widens identifiers
/// to the paper's 48-bit fields when packing 64-bit lanes, so nothing
/// downstream assumes 32 bits beyond this alias.
pub type VertexId = u32;

/// Edge identifier: an index into a graph's edge arrays.
pub type EdgeId = u64;

/// Maximum vertex identifier representable in a Vector-Sparse 48-bit field.
pub const MAX_VSPARSE_VERTEX: u64 = (1u64 << 48) - 1;

/// Errors produced while building, loading, or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= num_vertices`.
    VertexOutOfRange { vertex: u64, num_vertices: u64 },
    /// Weight array length disagreed with edge array length.
    WeightLengthMismatch { edges: usize, weights: usize },
    /// A CSR index was not monotonically non-decreasing or did not cover the
    /// edge array exactly.
    MalformedIndex(String),
    /// Parse or I/O failure while loading a graph.
    Io(String),
    /// Binary file did not carry the expected magic/version header.
    BadMagic { expected: [u8; 8], found: [u8; 8] },
    /// The input described an empty vertex set where one is required.
    EmptyGraph,
    /// Payload checksum disagreed with the stored CRC32C trailer.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// The format-version nibble named a version this build cannot decode.
    UnsupportedVersion(u8),
    /// Header-declared sizes exceed the caller's byte budget — refused
    /// before any allocation so a hostile header cannot OOM the loader.
    BudgetExceeded { required: u64, budget: u64 },
    /// A legacy (unchecksummed) file was refused because the caller did not
    /// opt in via `LoadOptions::allow_unchecksummed`.
    UnchecksummedRejected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range (graph has {num_vertices} vertices)"
            ),
            GraphError::WeightLengthMismatch { edges, weights } => write!(
                f,
                "weight array has {weights} entries but edge array has {edges}"
            ),
            GraphError::MalformedIndex(msg) => write!(f, "malformed vertex index: {msg}"),
            GraphError::Io(msg) => write!(f, "graph I/O error: {msg}"),
            GraphError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            GraphError::EmptyGraph => write!(f, "graph must have at least one vertex"),
            GraphError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: file stores {stored:#010x}, computed {computed:#010x}"
            ),
            GraphError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary format version {v}")
            }
            GraphError::BudgetExceeded { required, budget } => write!(
                f,
                "header declares {required} bytes of payload, over the {budget}-byte budget"
            ),
            GraphError::UnchecksummedRejected => write!(
                f,
                "legacy unchecksummed file rejected (set allow_unchecksummed to load it)"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::WeightLengthMismatch {
            edges: 4,
            weights: 3,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("3"));

        let e = GraphError::MalformedIndex("offset decreased".into());
        assert!(e.to_string().contains("offset decreased"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let ge: GraphError = io.into();
        assert!(matches!(ge, GraphError::Io(_)));
        assert!(ge.to_string().contains("nope"));
    }

    #[test]
    fn vsparse_limit_is_48_bits() {
        assert_eq!(MAX_VSPARSE_VERTEX, 0x0000_FFFF_FFFF_FFFF);
    }
}

//! Graph serialization: whitespace text edge lists and a compact binary
//! format (the moral equivalent of Grazelle's `-push`/`-pull` binary inputs,
//! except one file carries both orientations' source edge list).

use crate::edgelist::EdgeList;
use crate::graph::Graph;
use crate::types::{GraphError, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes + version for the binary format.
pub const MAGIC: [u8; 8] = *b"GRZL0001";

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

/// Parses a text edge list: one `src dst [weight]` per line, `#`-prefixed
/// comment lines ignored. The vertex set is sized to the maximum endpoint.
pub fn read_text_edgelist<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut any_weight = false;
    let mut max_v: u64 = 0;
    let br = BufReader::new(reader);
    for (lineno, line) in br.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> Result<u64, GraphError> {
            s.ok_or_else(|| GraphError::Io(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<u64>()
                .map_err(|e| GraphError::Io(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let s = parse(it.next(), "source")?;
        let d = parse(it.next(), "destination")?;
        if s > u32::MAX as u64 || d > u32::MAX as u64 {
            return Err(GraphError::VertexOutOfRange {
                vertex: s.max(d),
                num_vertices: u32::MAX as u64,
            });
        }
        max_v = max_v.max(s).max(d);
        if let Some(ws) = it.next() {
            let w: f64 = ws
                .parse()
                .map_err(|e| GraphError::Io(format!("line {}: bad weight: {e}", lineno + 1)))?;
            if !any_weight && !edges.is_empty() {
                return Err(GraphError::Io(format!(
                    "line {}: weight appears after unweighted edges",
                    lineno + 1
                )));
            }
            any_weight = true;
            weights.push(w);
        } else if any_weight {
            return Err(GraphError::Io(format!(
                "line {}: missing weight in weighted edge list",
                lineno + 1
            )));
        }
        edges.push((s as VertexId, d as VertexId));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    };
    let mut el = EdgeList::with_capacity(n, edges.len());
    if any_weight {
        for (&(s, d), &w) in edges.iter().zip(&weights) {
            el.push_weighted(s, d, w)?;
        }
    } else {
        for &(s, d) in &edges {
            el.push(s, d)?;
        }
    }
    Ok(el)
}

/// Writes a text edge list in the format [`read_text_edgelist`] accepts.
pub fn write_text_edgelist<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# grazelle edge list: {} vertices", el.num_vertices())?;
    match el.weights() {
        Some(ws) => {
            for (&(s, d), &wt) in el.edges().iter().zip(ws) {
                writeln!(w, "{s} {d} {wt}")?;
            }
        }
        None => {
            for &(s, d) in el.edges() {
                writeln!(w, "{s} {d}")?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a text edge list from a file path.
pub fn load_text<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    read_text_edgelist(std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Matrix Market format
// ---------------------------------------------------------------------------

/// Parses a Matrix Market (`.mtx`) coordinate file as a graph.
///
/// The paper frames pull engines against the SpMV literature (§4 Related
/// Work), whose datasets ship in this format. Supported header:
/// `%%MatrixMarket matrix coordinate (real|pattern|integer)
/// (general|symmetric)`. Entries are 1-based `(row, col[, value])`; row →
/// vertex `row-1` gains an edge to `col-1` (symmetric matrices add the
/// mirrored edge). `real`/`integer` values become edge weights; `pattern`
/// yields an unweighted graph. Self-loop diagonal entries are kept.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let br = BufReader::new(reader);
    let mut lines = br.lines();
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Io("empty MatrixMarket file".into()))??;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" || h[2] != "coordinate" {
        return Err(GraphError::Io(format!(
            "unsupported MatrixMarket header: {header}"
        )));
    }
    let weighted = match h[3].as_str() {
        "real" | "integer" => true,
        "pattern" => false,
        other => {
            return Err(GraphError::Io(format!(
                "unsupported MatrixMarket field type '{other}'"
            )))
        }
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(GraphError::Io(format!(
                "unsupported MatrixMarket symmetry '{other}'"
            )))
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| GraphError::Io("missing size line".into()))?;
    let dims: Vec<u64> = size_line
        .split_whitespace()
        .map(|s| {
            s.parse()
                .map_err(|e| GraphError::Io(format!("bad size line: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(GraphError::Io("size line needs rows cols nnz".into()));
    }
    let (rows, cols, nnz) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
    let n = rows.max(cols);
    let mut el = EdgeList::with_capacity(n, if symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: u64 = it
            .next()
            .ok_or_else(|| GraphError::Io("missing row".into()))?
            .parse()
            .map_err(|e| GraphError::Io(format!("bad row: {e}")))?;
        let c: u64 = it
            .next()
            .ok_or_else(|| GraphError::Io("missing col".into()))?
            .parse()
            .map_err(|e| GraphError::Io(format!("bad col: {e}")))?;
        if r == 0 || c == 0 || r > rows as u64 || c > cols as u64 {
            return Err(GraphError::Io(format!("entry ({r},{c}) out of bounds")));
        }
        let (s, d) = ((r - 1) as VertexId, (c - 1) as VertexId);
        if weighted {
            let w: f64 = it
                .next()
                .ok_or_else(|| GraphError::Io("missing value".into()))?
                .parse()
                .map_err(|e| GraphError::Io(format!("bad value: {e}")))?;
            el.push_weighted(s, d, w)?;
            if symmetric && s != d {
                el.push_weighted(d, s, w)?;
            }
        } else {
            el.push(s, d)?;
            if symmetric && s != d {
                el.push(d, s)?;
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(GraphError::Io(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(el)
}

/// Loads a Matrix Market file from a path.
pub fn load_matrix_market<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    read_matrix_market(std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

/// Little-endian cursor over a byte slice (replaces the `bytes` crate's
/// `Buf`, which is unavailable in the offline build environment). Bounds
/// are checked once in [`decode_binary`] before any `get_*` call, so the
/// accessors themselves only `debug_assert`.
struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        debug_assert!(self.remaining() >= N, "ByteReader over-read");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }
}

/// Serializes an edge list to the compact binary format:
/// `MAGIC | flags:u8 | n:u64 | m:u64 | (src:u32 dst:u32)*m | (weight:f64)*m?`
pub fn encode_binary(el: &EdgeList) -> Vec<u8> {
    let m = el.num_edges();
    let weighted = el.is_weighted();
    let cap = 8 + 1 + 16 + m * 8 + if weighted { m * 8 } else { 0 };
    let mut buf = Vec::with_capacity(cap);
    buf.extend_from_slice(&MAGIC);
    buf.push(weighted as u8);
    buf.extend_from_slice(&(el.num_vertices() as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    for &(s, d) in el.edges() {
        buf.extend_from_slice(&s.to_le_bytes());
        buf.extend_from_slice(&d.to_le_bytes());
    }
    if let Some(ws) = el.weights() {
        for &w in ws {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    buf
}

/// Deserializes the binary format produced by [`encode_binary`].
pub fn decode_binary(data: &[u8]) -> Result<EdgeList, GraphError> {
    if data.len() < MAGIC.len() + 1 + 16 {
        return Err(GraphError::Io("binary graph truncated (header)".into()));
    }
    let mut data = ByteReader::new(data);
    let found: [u8; 8] = data.take();
    if found != MAGIC {
        return Err(GraphError::BadMagic {
            expected: MAGIC,
            found,
        });
    }
    let weighted = data.get_u8() != 0;
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    let need = m
        .checked_mul(if weighted { 16 } else { 8 })
        .ok_or_else(|| GraphError::Io("binary graph edge count overflows".into()))?;
    if data.remaining() < need {
        return Err(GraphError::Io(format!(
            "binary graph truncated: need {need} more bytes, have {}",
            data.remaining()
        )));
    }
    let mut el = EdgeList::with_capacity(n, m);
    if weighted {
        let mut pairs = Vec::with_capacity(m);
        for _ in 0..m {
            pairs.push((data.get_u32_le(), data.get_u32_le()));
        }
        let mut ws = Vec::with_capacity(m);
        for _ in 0..m {
            ws.push(data.get_f64_le());
        }
        for (&(s, d), &w) in pairs.iter().zip(&ws) {
            el.push_weighted(s, d, w)?;
        }
    } else {
        for _ in 0..m {
            let s = data.get_u32_le();
            let d = data.get_u32_le();
            el.push(s, d)?;
        }
    }
    Ok(el)
}

/// Saves an edge list to a binary file.
pub fn save_binary<P: AsRef<Path>>(el: &EdgeList, path: P) -> Result<(), GraphError> {
    std::fs::write(path, encode_binary(el))?;
    Ok(())
}

/// Loads an edge list from a binary file.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    decode_binary(&std::fs::read(path)?)
}

/// Loads a graph (both orientations) from a binary edge-list file.
pub fn load_graph_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    Graph::from_edgelist(&load_binary(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_pairs(6, &[(0, 1), (2, 3), (4, 5), (5, 0)]).unwrap()
    }

    #[test]
    fn text_roundtrip_unweighted() {
        let el = sample();
        let mut buf = Vec::new();
        write_text_edgelist(&el, &mut buf).unwrap();
        let back = read_text_edgelist(&buf[..]).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
    }

    #[test]
    fn text_roundtrip_weighted() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 0.5).unwrap();
        el.push_weighted(1, 2, 2.25).unwrap();
        let mut buf = Vec::new();
        write_text_edgelist(&el, &mut buf).unwrap();
        let back = read_text_edgelist(&buf[..]).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.weights().unwrap(), el.weights().unwrap());
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n  # indented comment\n1 2\n";
        let el = read_text_edgelist(text.as_bytes()).unwrap();
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text_edgelist("0".as_bytes()).is_err());
        assert!(read_text_edgelist("a b".as_bytes()).is_err());
        assert!(read_text_edgelist("0 1 x".as_bytes()).is_err());
        // Mixing weighted and unweighted lines fails either way around.
        assert!(read_text_edgelist("0 1\n1 2 3.5".as_bytes()).is_err());
        assert!(read_text_edgelist("0 1 3.5\n1 2".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let el = sample();
        let bytes = encode_binary(&el);
        let back = decode_binary(&bytes).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
        assert!(!back.is_weighted());
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let mut el = EdgeList::new(4);
        el.push_weighted(0, 3, -1.5).unwrap();
        el.push_weighted(3, 2, 1e300).unwrap();
        let back = decode_binary(&encode_binary(&el)).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.weights().unwrap(), el.weights().unwrap());
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let el = sample();
        let bytes = encode_binary(&el);
        let mut corrupt = bytes.to_vec();
        corrupt[0] = b'X';
        assert!(matches!(
            decode_binary(&corrupt),
            Err(GraphError::BadMagic { .. })
        ));
        assert!(decode_binary(&bytes[..bytes.len() - 4]).is_err());
        assert!(decode_binary(&bytes[..10]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("grazelle_io_test.bin");
        let el = sample();
        save_binary(&el, &path).unwrap();
        let g = load_graph_binary(&path).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_market_general_real() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   3 3 3\n\
                   1 2 1.5\n\
                   2 3 2.5\n\
                   3 1 3.5\n";
        let el = read_matrix_market(mtx.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(el.weights().unwrap(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn matrix_market_symmetric_pattern_mirrors() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   4 4 3\n\
                   2 1\n\
                   3 3\n\
                   4 2\n";
        let el = read_matrix_market(mtx.as_bytes()).unwrap();
        // Off-diagonal entries mirrored; diagonal kept once.
        let mut edges = el.edges().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 3), (2, 2), (3, 1)]);
        assert!(!el.is_weighted());
    }

    #[test]
    fn matrix_market_rejects_malformed() {
        // Wrong object/format.
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 1\n".as_bytes())
                .is_err()
        );
        // Unsupported field type.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Out-of-bounds entry.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n".as_bytes()
        )
        .is_err());
        // Entry-count mismatch.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n".as_bytes()
        )
        .is_err());
        // 1-based index zero.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n".as_bytes()
        )
        .is_err());
        // Empty file.
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rectangular_uses_max_dimension() {
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n2 5 1\n1 5\n";
        let el = read_matrix_market(mtx.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.edges(), &[(0, 4)]);
    }

    #[test]
    fn empty_text_gives_empty_list() {
        let el = read_text_edgelist("".as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 0);
        assert_eq!(el.num_edges(), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Text roundtrip is lossless for weighted and unweighted lists.
            #[test]
            fn prop_text_roundtrip(
                edges in proptest::collection::vec((0u32..40, 0u32..40), 1..80),
                weights in proptest::option::of(
                    proptest::collection::vec(-1e6f64..1e6, 80),
                ),
            ) {
                let mut el = EdgeList::new(40);
                match &weights {
                    Some(ws) => {
                        for (&(s, d), &w) in edges.iter().zip(ws) {
                            el.push_weighted(s, d, w).unwrap();
                        }
                    }
                    None => {
                        for &(s, d) in &edges {
                            el.push(s, d).unwrap();
                        }
                    }
                }
                let mut buf = Vec::new();
                write_text_edgelist(&el, &mut buf).unwrap();
                let back = read_text_edgelist(&buf[..]).unwrap();
                prop_assert_eq!(back.edges(), el.edges());
                match (back.weights(), el.weights()) {
                    (Some(a), Some(b)) => prop_assert_eq!(a, b),
                    (None, None) => {}
                    other => prop_assert!(false, "weight presence mismatch {:?}", other.0.map(|w| w.len())),
                }
            }

            /// Binary roundtrip is bit-exact for any weights, including
            /// infinities and NaN payloads.
            #[test]
            fn prop_binary_roundtrip_exact(
                edges in proptest::collection::vec((0u32..30, 0u32..30), 0..60),
                bits in proptest::collection::vec(any::<u64>(), 60),
            ) {
                let mut el = EdgeList::new(30);
                for (&(s, d), &b) in edges.iter().zip(&bits) {
                    el.push_weighted(s, d, f64::from_bits(b)).unwrap();
                }
                let back = decode_binary(&encode_binary(&el)).unwrap();
                prop_assert_eq!(back.edges(), el.edges());
                let a: Vec<u64> = back.weights().unwrap_or(&[]).iter().map(|w| w.to_bits()).collect();
                let b: Vec<u64> = el.weights().unwrap_or(&[]).iter().map(|w| w.to_bits()).collect();
                prop_assert_eq!(a, b);
            }
        }
    }
}

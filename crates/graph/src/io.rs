//! Graph serialization: whitespace text edge lists, Matrix Market, and a
//! compact binary format (the moral equivalent of Grazelle's `-push`/`-pull`
//! binary inputs, except one file carries both orientations' source edge
//! list).
//!
//! # Hardened ingestion (ISSUE 2)
//!
//! The binary format is versioned and checksummed: the `flags` byte carries
//! a version nibble in its high bits, and version-1 files end in a CRC32C
//! trailer over every preceding byte. Decoding is strict by default —
//! legacy (version-0, unchecksummed) files load only behind
//! [`LoadOptions::allow_unchecksummed`], and header-declared sizes are
//! validated against a byte budget *before* any allocation so a hostile
//! three-line header cannot OOM the loader. The `load_*` entry points read
//! through [`read_retrying`], absorbing bounded transient I/O errors
//! (`Interrupted`/`WouldBlock`) with backoff.

use crate::checksum::crc32c;
use crate::edgelist::EdgeList;
use crate::faults::{read_retrying, RetryPolicy, RetryStats};
use crate::graph::Graph;
use crate::types::{GraphError, VertexId};
use grazelle_sched::ThreadPool;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes for the binary format.
pub const MAGIC: [u8; 8] = *b"GRZL0001";

/// Current binary format version, stored in the high nibble of the flags
/// byte. Version 0 is the legacy unchecksummed layout; version 1 appends a
/// CRC32C trailer.
pub const FORMAT_VERSION: u8 = 1;

/// Flags bit 0: the payload carries an 8-byte weight per edge.
const FLAG_WEIGHTED: u8 = 0x01;

/// `MAGIC | flags:u8 | n:u64 | m:u64`.
const HEADER_LEN: usize = 8 + 1 + 16;

/// CRC32C trailer length (version ≥ 1 only).
const TRAILER_LEN: usize = 4;

/// Edge reservation cap for loaders that cannot see the input size (e.g. a
/// generic `Read`): headers may declare any count, so preallocation is
/// clamped here and the `Vec` grows normally for legitimate inputs.
const PREALLOC_CAP: usize = 1 << 16;

/// Knobs governing how much a loader will trust and spend on an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Accept legacy version-0 files that carry no checksum. Off by
    /// default: an unchecksummed multi-hundred-GB input is exactly the
    /// silent-corruption risk the format revision exists to close.
    pub allow_unchecksummed: bool,
    /// Upper bound, in bytes, on what the header-declared sizes may imply
    /// (payload plus ~8 bytes/vertex of downstream build cost). Checked
    /// before any allocation.
    pub max_bytes: u64,
    /// Retry policy for transient I/O errors in the `load_*`/`read_*`
    /// entry points.
    pub retry: RetryPolicy,
}

impl LoadOptions {
    /// Default byte budget: 1 GiB. Raise it explicitly for larger inputs.
    pub const DEFAULT_BUDGET: u64 = 1 << 30;

    /// Strict defaults: checksums required, 1 GiB budget, default retry.
    pub fn strict() -> Self {
        LoadOptions {
            allow_unchecksummed: false,
            max_bytes: Self::DEFAULT_BUDGET,
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// Builder: opt into loading legacy unchecksummed files.
    pub fn with_allow_unchecksummed(mut self, allow: bool) -> Self {
        self.allow_unchecksummed = allow;
        self
    }

    /// Builder: byte budget.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Builder: retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions::strict()
    }
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

/// Byte-level line iterator shared by the text parsers: yields each line
/// without its terminator, never allocating. `"a\n"` is one line, matching
/// `BufRead::lines`.
fn next_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    if *pos >= bytes.len() {
        return None;
    }
    let start = *pos;
    let end = bytes[start..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| start + i)
        .unwrap_or(bytes.len());
    *pos = end + 1;
    Some(&bytes[start..end])
}

/// ASCII-whitespace trim over bytes (the zero-alloc stand-in for
/// `str::trim` on the ASCII inputs this format actually uses).
fn trim_ascii(mut line: &[u8]) -> &[u8] {
    while let [b, rest @ ..] = line {
        if b.is_ascii_whitespace() {
            line = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., b] = line {
        if b.is_ascii_whitespace() {
            line = rest;
        } else {
            break;
        }
    }
    line
}

/// Next ASCII-whitespace-separated token, advancing `pos` past it.
fn next_token<'a>(line: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    while *pos < line.len() && line[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    if *pos >= line.len() {
        return None;
    }
    let start = *pos;
    while *pos < line.len() && !line[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    Some(&line[start..*pos])
}

/// Parses a token via `str::parse` so error text matches the historical
/// `String`-based parser exactly; invalid UTF-8 degrades to a replacement
/// character, which `parse` rejects with the usual "invalid digit" error.
fn token_str(tok: &[u8]) -> &str {
    std::str::from_utf8(tok).unwrap_or("\u{fffd}")
}

/// A text-parse failure, classified; carried with a chunk-relative line
/// number until the merge step knows absolute numbering.
#[derive(Debug)]
enum TextErrKind {
    Missing(&'static str),
    Bad(&'static str, String),
    BadWeight(String),
    OutOfRange(u64),
    WeightAfterUnweighted,
    MissingWeight,
}

impl TextErrKind {
    fn into_error(self, line: usize) -> GraphError {
        let lineno = line + 1;
        match self {
            TextErrKind::Missing(what) => GraphError::Io(format!("line {lineno}: missing {what}")),
            TextErrKind::Bad(what, e) => GraphError::Io(format!("line {lineno}: bad {what}: {e}")),
            TextErrKind::BadWeight(e) => GraphError::Io(format!("line {lineno}: bad weight: {e}")),
            TextErrKind::OutOfRange(v) => GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: u32::MAX as u64,
            },
            TextErrKind::WeightAfterUnweighted => GraphError::Io(format!(
                "line {lineno}: weight appears after unweighted edges"
            )),
            TextErrKind::MissingWeight => GraphError::Io(format!(
                "line {lineno}: missing weight in weighted edge list"
            )),
        }
    }
}

/// One parsed chunk of a text edge list. Chunks are produced independently
/// (one per worker for the parallel path, a single whole-buffer chunk for
/// the sequential path) and merged in deterministic order by
/// [`merge_text_chunks`], so both paths share every byte of parsing logic.
#[derive(Debug, Default)]
struct TextChunk {
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<f64>,
    max_v: u64,
    /// Lines consumed (for absolute line numbering of later chunks).
    lines: usize,
    /// Chunk-relative line of the first edge, if any.
    first_edge_line: usize,
    /// Weighted-mode of this chunk's edges (`None` when the chunk has none).
    weighted: Option<bool>,
    /// First failure, at its chunk-relative line. Parsing stops here.
    err: Option<(usize, TextErrKind)>,
}

/// Parses one newline-delimited byte range: `src dst [weight]` per line,
/// `#`-comments and blank lines skipped, zero allocations per line.
fn parse_text_chunk(bytes: &[u8]) -> TextChunk {
    let mut out = TextChunk::default();
    let mut pos = 0usize;
    while let Some(raw) = next_line(bytes, &mut pos) {
        let lineno = out.lines;
        out.lines += 1;
        let line = trim_ascii(raw);
        if line.is_empty() || line[0] == b'#' {
            continue;
        }
        let mut tp = 0usize;
        let mut field = |what: &'static str| -> Result<u64, TextErrKind> {
            let tok = next_token(line, &mut tp).ok_or(TextErrKind::Missing(what))?;
            token_str(tok)
                .parse::<u64>()
                .map_err(|e| TextErrKind::Bad(what, e.to_string()))
        };
        let parsed = field("source").and_then(|s| field("destination").map(|d| (s, d)));
        let (s, d) = match parsed {
            Ok(sd) => sd,
            Err(kind) => {
                out.err = Some((lineno, kind));
                break;
            }
        };
        if s > u32::MAX as u64 || d > u32::MAX as u64 {
            out.err = Some((lineno, TextErrKind::OutOfRange(s.max(d))));
            break;
        }
        let weight = match next_token(line, &mut tp) {
            Some(tok) => match token_str(tok).parse::<f64>() {
                Ok(w) => Some(w),
                Err(e) => {
                    out.err = Some((lineno, TextErrKind::BadWeight(e.to_string())));
                    break;
                }
            },
            None => None,
        };
        // Enforce mode consistency *within* the chunk; consistency against
        // earlier chunks is the merge step's job.
        match (out.weighted, weight) {
            (Some(false), Some(_)) => {
                out.err = Some((lineno, TextErrKind::WeightAfterUnweighted));
                break;
            }
            (Some(true), None) => {
                out.err = Some((lineno, TextErrKind::MissingWeight));
                break;
            }
            _ => {}
        }
        if out.weighted.is_none() {
            out.weighted = Some(weight.is_some());
            out.first_edge_line = lineno;
        }
        if let Some(w) = weight {
            out.weights.push(w);
        }
        out.max_v = out.max_v.max(s).max(d);
        out.edges.push((s as VertexId, d as VertexId));
    }
    out
}

/// Concatenates chunk results in order, resolving cross-chunk weighted/
/// unweighted conflicts and converting chunk-relative error lines to
/// absolute ones. With a single whole-buffer chunk this reduces exactly to
/// the historical sequential semantics; with many chunks the earliest
/// problem (by absolute line) still wins, so the reported error is
/// independent of the chunk count.
fn merge_text_chunks(chunks: Vec<TextChunk>) -> Result<EdgeList, GraphError> {
    let total_edges: usize = chunks.iter().map(|c| c.edges.len()).sum();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(total_edges);
    let mut weights: Vec<f64> = Vec::new();
    let mut any_weight = false;
    let mut max_v = 0u64;
    let mut line_base = 0usize;
    for chunk in chunks {
        // A chunk whose first edge disagrees with the established global
        // mode fails at that first edge — exactly where the sequential
        // scan would have tripped.
        let conflict = match chunk.weighted {
            Some(w) if !edges.is_empty() && w != any_weight => Some((
                chunk.first_edge_line,
                if w {
                    TextErrKind::WeightAfterUnweighted
                } else {
                    TextErrKind::MissingWeight
                },
            )),
            _ => None,
        };
        // The chunk's own error can only be *later* than its first edge, so
        // the earlier of the two is the one the sequential scan hits first.
        let first_problem = match (conflict, chunk.err) {
            (Some((cl, ck)), Some((el, ek))) => Some(if cl <= el { (cl, ck) } else { (el, ek) }),
            (p @ Some(_), None) => p,
            (None, p @ Some(_)) => p,
            (None, None) => None,
        };
        if let Some((line, kind)) = first_problem {
            return Err(kind.into_error(line_base + line));
        }
        if let Some(w) = chunk.weighted {
            if edges.is_empty() {
                any_weight = w;
            }
        }
        max_v = max_v.max(chunk.max_v);
        edges.extend_from_slice(&chunk.edges);
        if any_weight {
            weights.extend_from_slice(&chunk.weights);
        }
        line_base += chunk.lines;
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    };
    EdgeList::from_parts(n, edges, if any_weight { Some(weights) } else { None })
}

/// Parses a text edge list from a byte buffer: one `src dst [weight]` per
/// line, `#`-prefixed comment lines ignored. The vertex set is sized to the
/// maximum endpoint. Single-threaded; see
/// [`parse_text_edgelist_parallel`] for the pool-backed variant.
pub fn parse_text_edgelist(bytes: &[u8]) -> Result<EdgeList, GraphError> {
    merge_text_chunks(vec![parse_text_chunk(bytes)])
}

/// Splits `bytes` into `k` near-equal ranges whose boundaries fall just
/// after a newline, so no line straddles two ranges. Always returns exactly
/// `k` (possibly empty) ranges covering the whole buffer in order.
fn newline_chunk_ranges(bytes: &[u8], k: usize) -> Vec<std::ops::Range<usize>> {
    let len = bytes.len();
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 1..=k {
        let mut end = (len * i / k).max(start);
        if i < k {
            while end < len && (end == 0 || bytes[end - 1] != b'\n') {
                end += 1;
            }
        } else {
            end = len;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Parallel [`parse_text_edgelist`]: the buffer is split on newline
/// boundaries into one byte range per pool thread, each range is parsed
/// into thread-local vectors, and the results are concatenated in range
/// order — so the resulting list (and any reported error) is identical to
/// the sequential parse.
pub fn parse_text_edgelist_parallel(
    bytes: &[u8],
    pool: &ThreadPool,
) -> Result<EdgeList, GraphError> {
    let ranges = newline_chunk_ranges(bytes, pool.num_threads());
    let chunks = pool.run_tasks(ranges, |_, r| parse_text_chunk(&bytes[r]));
    merge_text_chunks(chunks)
}

/// Parses a text edge list from any [`Read`] (reads to EOF, then parses the
/// buffer). See [`parse_text_edgelist`].
pub fn read_text_edgelist<R: Read>(mut reader: R) -> Result<EdgeList, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_text_edgelist(&bytes)
}

/// Writes a text edge list in the format [`read_text_edgelist`] accepts.
pub fn write_text_edgelist<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# grazelle edge list: {} vertices", el.num_vertices())?;
    match el.weights() {
        Some(ws) => {
            for (&(s, d), &wt) in el.edges().iter().zip(ws) {
                writeln!(w, "{s} {d} {wt}")?;
            }
        }
        None => {
            for &(s, d) in el.edges() {
                writeln!(w, "{s} {d}")?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a text edge list from a file path, retrying transient I/O errors.
pub fn load_text<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    load_text_with(path, &LoadOptions::default())
}

/// [`load_text`] with explicit [`LoadOptions`]: the on-disk file size is
/// checked against `opts.max_bytes` before the file is read, and transient
/// I/O errors are retried per `opts.retry`.
pub fn load_text_with<P: AsRef<Path>>(path: P, opts: &LoadOptions) -> Result<EdgeList, GraphError> {
    let bytes = read_file_budgeted(path, opts)?;
    parse_text_edgelist(&bytes)
}

/// Parallel [`load_text`]: same hardened read path (byte budget, retrying
/// reader), then [`parse_text_edgelist_parallel`] on `pool`.
pub fn load_text_parallel<P: AsRef<Path>>(
    path: P,
    pool: &ThreadPool,
) -> Result<EdgeList, GraphError> {
    load_text_parallel_with(path, &LoadOptions::default(), pool)
}

/// [`load_text_parallel`] with explicit [`LoadOptions`].
pub fn load_text_parallel_with<P: AsRef<Path>>(
    path: P,
    opts: &LoadOptions,
    pool: &ThreadPool,
) -> Result<EdgeList, GraphError> {
    let bytes = read_file_budgeted(path, opts)?;
    parse_text_edgelist_parallel(&bytes, pool)
}

/// Shared hardened file read for the text loaders: budget check on the
/// on-disk size *before* reading, then a retrying read to EOF.
fn read_file_budgeted<P: AsRef<Path>>(path: P, opts: &LoadOptions) -> Result<Vec<u8>, GraphError> {
    let f = std::fs::File::open(path)?;
    if let Ok(md) = f.metadata() {
        if md.len() > opts.max_bytes {
            return Err(GraphError::BudgetExceeded {
                required: md.len(),
                budget: opts.max_bytes,
            });
        }
    }
    let (bytes, _) = read_retrying(f, opts.retry)?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Matrix Market format
// ---------------------------------------------------------------------------

/// Parses a Matrix Market (`.mtx`) coordinate file as a graph, with strict
/// default [`LoadOptions`]. See [`read_matrix_market_with`].
pub fn read_matrix_market<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    read_matrix_market_with(reader, &LoadOptions::default())
}

/// Parses a Matrix Market (`.mtx`) coordinate file as a graph.
///
/// The paper frames pull engines against the SpMV literature (§4 Related
/// Work), whose datasets ship in this format. Supported header:
/// `%%MatrixMarket matrix coordinate (real|pattern|integer)
/// (general|symmetric)`. Entries are 1-based `(row, col[, value])`; row →
/// vertex `row-1` gains an edge to `col-1` (symmetric matrices add the
/// mirrored edge). `real`/`integer` values become edge weights; `pattern`
/// yields an unweighted graph. Self-loop diagonal entries are kept.
///
/// Header-declared `rows`/`cols`/`nnz` are validated against
/// `opts.max_bytes` before anything is reserved, and the actual edge
/// reservation is additionally clamped — a hostile three-line header can
/// neither trigger a multi-GB allocation nor pass the final entry-count
/// check.
pub fn read_matrix_market_with<R: Read>(
    mut reader: R,
    opts: &LoadOptions,
) -> Result<EdgeList, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_matrix_market(&bytes, opts, None)
}

/// Parallel [`read_matrix_market_with`] over a byte buffer: header and size
/// line are parsed (and budget-checked) sequentially, then the entry body
/// is split on newline boundaries and parsed one range per pool thread,
/// concatenated in range order — symmetric mirroring stays adjacent to its
/// source entry, so the edge order is identical to the sequential parse.
pub fn parse_matrix_market_parallel(
    bytes: &[u8],
    opts: &LoadOptions,
    pool: &ThreadPool,
) -> Result<EdgeList, GraphError> {
    parse_matrix_market(bytes, opts, Some(pool))
}

/// Parsed header + size line of a Matrix Market file.
struct MmHeader {
    rows: u64,
    cols: u64,
    nnz: u64,
    weighted: bool,
    symmetric: bool,
    /// Byte offset where the entry body starts.
    body_start: usize,
}

/// One parsed chunk of a Matrix Market entry body. Like [`TextChunk`],
/// produced identically by the sequential (one chunk) and parallel (one per
/// thread) paths. MM errors carry no line numbers, so the merge just takes
/// the first failing chunk in order.
#[derive(Debug, Default)]
struct MmChunk {
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<f64>,
    /// Declared entries consumed (mirrored edges count once).
    seen: u64,
    err: Option<GraphError>,
}

fn parse_mm_header(bytes: &[u8], opts: &LoadOptions) -> Result<MmHeader, GraphError> {
    let mut pos = 0usize;
    let header_line = next_line(bytes, &mut pos)
        .ok_or_else(|| GraphError::Io("empty MatrixMarket file".into()))?;
    let header = std::str::from_utf8(header_line)
        .map_err(|_| GraphError::Io("stream did not contain valid UTF-8".into()))?;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" || h[2] != "coordinate" {
        return Err(GraphError::Io(format!(
            "unsupported MatrixMarket header: {header}"
        )));
    }
    let weighted = match h[3].as_str() {
        "real" | "integer" => true,
        "pattern" => false,
        other => {
            return Err(GraphError::Io(format!(
                "unsupported MatrixMarket field type '{other}'"
            )))
        }
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(GraphError::Io(format!(
                "unsupported MatrixMarket symmetry '{other}'"
            )))
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    while let Some(line) = next_line(bytes, &mut pos) {
        let t = trim_ascii(line);
        if t.is_empty() || t[0] == b'%' {
            continue;
        }
        size_line = Some(t);
        break;
    }
    let size_line = size_line.ok_or_else(|| GraphError::Io("missing size line".into()))?;
    let mut tp = 0usize;
    let mut dims: Vec<u64> = Vec::with_capacity(3);
    while let Some(tok) = next_token(size_line, &mut tp) {
        dims.push(
            token_str(tok)
                .parse()
                .map_err(|e| GraphError::Io(format!("bad size line: {e}")))?,
        );
    }
    if dims.len() != 3 {
        return Err(GraphError::Io("size line needs rows cols nnz".into()));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    let n = rows.max(cols);
    if n > u32::MAX as u64 + 1 {
        return Err(GraphError::VertexOutOfRange {
            vertex: n.saturating_sub(1),
            num_vertices: u32::MAX as u64 + 1,
        });
    }
    // Budget the declared sizes before reserving anything: each stored edge
    // costs 8 bytes (pair) plus 8 for a weight, doubled when symmetric
    // entries are mirrored, plus ~8 bytes/vertex of downstream build cost.
    let per_edge = (8 + if weighted { 8 } else { 0 }) * if symmetric { 2 } else { 1 };
    let required = nnz
        .checked_mul(per_edge)
        .and_then(|b| b.checked_add(n.saturating_mul(8)))
        .unwrap_or(u64::MAX);
    if required > opts.max_bytes {
        return Err(GraphError::BudgetExceeded {
            required,
            budget: opts.max_bytes,
        });
    }
    Ok(MmHeader {
        rows,
        cols,
        nnz,
        weighted,
        symmetric,
        body_start: pos,
    })
}

/// Parses one newline-delimited range of MM entry lines. Stops at the first
/// error, or as soon as this chunk *alone* exceeds the declared entry count
/// (the sequential parser's eager-surplus guard, which keeps a hostile
/// oversized body from growing the vectors unboundedly).
fn parse_mm_chunk(bytes: &[u8], h: &MmHeader, reserve: usize) -> MmChunk {
    let mut out = MmChunk {
        edges: Vec::with_capacity(reserve),
        weights: Vec::with_capacity(if h.weighted { reserve } else { 0 }),
        ..MmChunk::default()
    };
    let mut pos = 0usize;
    while let Some(raw) = next_line(bytes, &mut pos) {
        let t = trim_ascii(raw);
        if t.is_empty() || t[0] == b'%' {
            continue;
        }
        let mut tp = 0usize;
        let mut field = |what: &'static str, label: &'static str| -> Result<u64, GraphError> {
            let tok =
                next_token(t, &mut tp).ok_or_else(|| GraphError::Io(format!("missing {what}")))?;
            token_str(tok)
                .parse::<u64>()
                .map_err(|e| GraphError::Io(format!("bad {label}: {e}")))
        };
        let rc = field("row", "row").and_then(|r| field("col", "col").map(|c| (r, c)));
        let (r, c) = match rc {
            Ok(rc) => rc,
            Err(e) => {
                out.err = Some(e);
                return out;
            }
        };
        if r == 0 || c == 0 || r > h.rows || c > h.cols {
            out.err = Some(GraphError::Io(format!("entry ({r},{c}) out of bounds")));
            return out;
        }
        let (s, d) = ((r - 1) as VertexId, (c - 1) as VertexId);
        if h.weighted {
            let w = match next_token(t, &mut tp) {
                None => {
                    out.err = Some(GraphError::Io("missing value".into()));
                    return out;
                }
                Some(tok) => match token_str(tok).parse::<f64>() {
                    Ok(w) => w,
                    Err(e) => {
                        out.err = Some(GraphError::Io(format!("bad value: {e}")));
                        return out;
                    }
                },
            };
            out.weights.push(w);
            if h.symmetric && s != d {
                out.weights.push(w);
            }
        }
        out.edges.push((s, d));
        if h.symmetric && s != d {
            out.edges.push((d, s));
        }
        out.seen += 1;
        if out.seen > h.nnz {
            out.err = Some(GraphError::Io(format!(
                "more than the declared {} entries",
                h.nnz
            )));
            return out;
        }
    }
    out
}

fn parse_matrix_market(
    bytes: &[u8],
    opts: &LoadOptions,
    pool: Option<&ThreadPool>,
) -> Result<EdgeList, GraphError> {
    let h = parse_mm_header(bytes, opts)?;
    let edge_slots = if h.symmetric {
        h.nnz.saturating_mul(2)
    } else {
        h.nnz
    };
    let body = &bytes[h.body_start..];
    let chunks: Vec<MmChunk> = match pool {
        None => {
            let reserve = (edge_slots as usize).min(PREALLOC_CAP);
            vec![parse_mm_chunk(body, &h, reserve)]
        }
        Some(pool) => {
            let k = pool.num_threads();
            let reserve = (edge_slots as usize / k.max(1)).min(PREALLOC_CAP);
            let ranges = newline_chunk_ranges(body, k);
            pool.run_tasks(ranges, |_, r| parse_mm_chunk(&body[r], &h, reserve))
        }
    };
    let total_edges: usize = chunks.iter().map(|c| c.edges.len()).sum();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(total_edges);
    let mut weights: Vec<f64> = Vec::with_capacity(if h.weighted { total_edges } else { 0 });
    let mut seen = 0u64;
    for chunk in chunks {
        if let Some(e) = chunk.err {
            return Err(e);
        }
        seen += chunk.seen;
        edges.extend_from_slice(&chunk.edges);
        weights.extend_from_slice(&chunk.weights);
    }
    if seen > h.nnz {
        return Err(GraphError::Io(format!(
            "more than the declared {} entries",
            h.nnz
        )));
    }
    if seen != h.nnz {
        return Err(GraphError::Io(format!(
            "expected {} entries, found {seen}",
            h.nnz
        )));
    }
    let n = h.rows.max(h.cols) as usize;
    // An entry-less weighted matrix stays unweighted, matching the push-based
    // parser where the weight array only materialized on the first entry.
    let weights = if h.weighted && !edges.is_empty() {
        Some(weights)
    } else {
        None
    };
    EdgeList::from_parts(n, edges, weights)
}

/// Loads a Matrix Market file from a path, retrying transient I/O errors.
pub fn load_matrix_market<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    load_matrix_market_with(path, &LoadOptions::default())
}

/// [`load_matrix_market`] with explicit [`LoadOptions`].
pub fn load_matrix_market_with<P: AsRef<Path>>(
    path: P,
    opts: &LoadOptions,
) -> Result<EdgeList, GraphError> {
    let (bytes, _) = read_retrying(std::fs::File::open(path)?, opts.retry)?;
    parse_matrix_market(&bytes, opts, None)
}

/// Parallel [`load_matrix_market`]: hardened read, then the chunked body
/// parse on `pool`.
pub fn load_matrix_market_parallel<P: AsRef<Path>>(
    path: P,
    pool: &ThreadPool,
) -> Result<EdgeList, GraphError> {
    load_matrix_market_parallel_with(path, &LoadOptions::default(), pool)
}

/// [`load_matrix_market_parallel`] with explicit [`LoadOptions`].
pub fn load_matrix_market_parallel_with<P: AsRef<Path>>(
    path: P,
    opts: &LoadOptions,
    pool: &ThreadPool,
) -> Result<EdgeList, GraphError> {
    let (bytes, _) = read_retrying(std::fs::File::open(path)?, opts.retry)?;
    parse_matrix_market(&bytes, opts, Some(pool))
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

/// Little-endian cursor over a byte slice (replaces the `bytes` crate's
/// `Buf`, which is unavailable in the offline build environment). Bounds
/// are checked once in [`decode_binary_with`] before any `get_*` call, so
/// the accessors themselves only `debug_assert`.
struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    fn new_at(data: &'a [u8], pos: usize) -> Self {
        ByteReader { data, pos }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        debug_assert!(self.remaining() >= N, "ByteReader over-read");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }
}

/// Serializes an edge list to the current (version-1, checksummed) binary
/// format:
///
/// `MAGIC | flags:u8 | n:u64 | m:u64 | (src:u32 dst:u32)*m | (weight:f64)*m? | crc32c:u32`
///
/// The flags byte packs the format version in its high nibble and
/// `FLAG_WEIGHTED` in bit 0. The trailer is the CRC32C of every preceding
/// byte, little-endian.
pub fn encode_binary(el: &EdgeList) -> Vec<u8> {
    let mut buf = encode_body(el, (FORMAT_VERSION << 4) | el.is_weighted() as u8);
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Serializes an edge list in the legacy version-0 layout: no version
/// nibble, no checksum trailer. Kept so the compatibility gate
/// ([`LoadOptions::allow_unchecksummed`]) has a writer to test against and
/// so pre-revision tooling can still be fed.
pub fn encode_binary_legacy(el: &EdgeList) -> Vec<u8> {
    encode_body(el, el.is_weighted() as u8)
}

fn encode_body(el: &EdgeList, flags: u8) -> Vec<u8> {
    let m = el.num_edges();
    let weighted = el.is_weighted();
    let cap = HEADER_LEN + m * 8 + if weighted { m * 8 } else { 0 } + TRAILER_LEN;
    let mut buf = Vec::with_capacity(cap);
    buf.extend_from_slice(&MAGIC);
    buf.push(flags);
    buf.extend_from_slice(&(el.num_vertices() as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    for &(s, d) in el.edges() {
        buf.extend_from_slice(&s.to_le_bytes());
        buf.extend_from_slice(&d.to_le_bytes());
    }
    if let Some(ws) = el.weights() {
        for &w in ws {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    buf
}

/// Deserializes the binary format with strict default [`LoadOptions`]
/// (checksum required, 1 GiB budget).
pub fn decode_binary(data: &[u8]) -> Result<EdgeList, GraphError> {
    decode_binary_with(data, &LoadOptions::default())
}

/// Deserializes the binary format produced by [`encode_binary`] (or, behind
/// `opts.allow_unchecksummed`, by [`encode_binary_legacy`]).
///
/// Validation order for version-1 files: magic → version → CRC32C over the
/// whole file minus the trailer → byte budget on the header-declared
/// `n`/`m` → exact payload length → decode. The checksum runs before the
/// size fields are trusted, so any single corrupted byte surfaces as a
/// typed error before a single byte of payload is allocated or parsed. The
/// weighted branch decodes pairs and weights in one streaming pass (two
/// cursors over the same buffer, no intermediate `Vec`s).
pub fn decode_binary_with(data: &[u8], opts: &LoadOptions) -> Result<EdgeList, GraphError> {
    if data.len() < HEADER_LEN {
        return Err(GraphError::Io("binary graph truncated (header)".into()));
    }
    let mut r = ByteReader::new(data);
    let found: [u8; 8] = r.take();
    if found != MAGIC {
        return Err(GraphError::BadMagic {
            expected: MAGIC,
            found,
        });
    }
    let flags = r.get_u8();
    let version = flags >> 4;
    match version {
        0 => {
            if !opts.allow_unchecksummed {
                return Err(GraphError::UnchecksummedRejected);
            }
        }
        FORMAT_VERSION => {
            if data.len() < HEADER_LEN + TRAILER_LEN {
                return Err(GraphError::Io("binary graph truncated (trailer)".into()));
            }
            let stored = u32::from_le_bytes(data[data.len() - TRAILER_LEN..].try_into().unwrap());
            let computed = crc32c(&data[..data.len() - TRAILER_LEN]);
            if stored != computed {
                return Err(GraphError::ChecksumMismatch { stored, computed });
            }
        }
        v => return Err(GraphError::UnsupportedVersion(v)),
    }
    let weighted = flags & FLAG_WEIGHTED != 0;
    let n = r.get_u64_le();
    let m = r.get_u64_le();
    // Budget the header-declared sizes before any allocation: payload bytes
    // plus ~8 bytes/vertex of downstream build cost.
    let payload = m
        .checked_mul(if weighted { 16 } else { 8 })
        .ok_or_else(|| GraphError::Io("binary graph edge count overflows".into()))?;
    let required = payload.saturating_add(n.saturating_mul(8));
    if required > opts.max_bytes {
        return Err(GraphError::BudgetExceeded {
            required,
            budget: opts.max_bytes,
        });
    }
    let need = payload as usize;
    let avail = data.len()
        - HEADER_LEN
        - if version == FORMAT_VERSION {
            TRAILER_LEN
        } else {
            0
        };
    if version == FORMAT_VERSION {
        // Checksummed files must match the declared payload exactly; any
        // surplus would be unchecked bytes a writer never produced.
        if avail != need {
            return Err(GraphError::Io(format!(
                "binary graph payload length mismatch: header declares {need} bytes, file carries {avail}"
            )));
        }
    } else if avail < need {
        return Err(GraphError::Io(format!(
            "binary graph truncated: need {need} payload bytes, have {avail}"
        )));
    }
    let mut el = EdgeList::with_capacity(n as usize, (m as usize).min(PREALLOC_CAP));
    if weighted {
        // Single streaming pass: one cursor over the pair region, one over
        // the weight region, pushing edge+weight together.
        let mut pairs = ByteReader::new_at(data, HEADER_LEN);
        let mut ws = ByteReader::new_at(data, HEADER_LEN + (m as usize) * 8);
        for _ in 0..m {
            let s = pairs.get_u32_le();
            let d = pairs.get_u32_le();
            let w = ws.get_f64_le();
            el.push_weighted(s, d, w)?;
        }
    } else {
        let mut pairs = ByteReader::new_at(data, HEADER_LEN);
        for _ in 0..m {
            let s = pairs.get_u32_le();
            let d = pairs.get_u32_le();
            el.push(s, d)?;
        }
    }
    Ok(el)
}

/// Reads and decodes a binary edge list from any [`Read`], absorbing
/// transient I/O errors per `opts.retry`. Returns the decoded list plus the
/// retry counters (clean runs report zero).
pub fn read_binary<R: Read>(
    reader: R,
    opts: &LoadOptions,
) -> Result<(EdgeList, RetryStats), GraphError> {
    let (bytes, stats) = read_retrying(reader, opts.retry)?;
    Ok((decode_binary_with(&bytes, opts)?, stats))
}

/// Saves an edge list to a binary file (current checksummed format).
pub fn save_binary<P: AsRef<Path>>(el: &EdgeList, path: P) -> Result<(), GraphError> {
    std::fs::write(path, encode_binary(el))?;
    Ok(())
}

/// Loads an edge list from a binary file with strict default options.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    load_binary_with(path, &LoadOptions::default())
}

/// [`load_binary`] with explicit [`LoadOptions`]. The on-disk file size is
/// checked against the byte budget before the file is read.
pub fn load_binary_with<P: AsRef<Path>>(
    path: P,
    opts: &LoadOptions,
) -> Result<EdgeList, GraphError> {
    let f = std::fs::File::open(path)?;
    if let Ok(md) = f.metadata() {
        if md.len()
            > opts
                .max_bytes
                .saturating_add((HEADER_LEN + TRAILER_LEN) as u64)
        {
            return Err(GraphError::BudgetExceeded {
                required: md.len(),
                budget: opts.max_bytes,
            });
        }
    }
    read_binary(f, opts).map(|(el, _)| el)
}

/// Loads a graph (both orientations) from a binary edge-list file.
pub fn load_graph_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    Graph::from_edgelist(&load_binary(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultyReader, IoFaultPlan};

    fn sample() -> EdgeList {
        EdgeList::from_pairs(6, &[(0, 1), (2, 3), (4, 5), (5, 0)]).unwrap()
    }

    fn weighted_sample() -> EdgeList {
        let mut el = EdgeList::new(4);
        el.push_weighted(0, 3, -1.5).unwrap();
        el.push_weighted(3, 2, 1e300).unwrap();
        el.push_weighted(1, 1, f64::NEG_INFINITY).unwrap();
        el
    }

    /// Hand-assembles a version-1 file with a *valid* checksum, so budget
    /// and length validation can be tested independently of CRC failures.
    fn craft_v1(n: u64, m: u64, weighted: bool, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push((FORMAT_VERSION << 4) | weighted as u8);
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        buf.extend_from_slice(payload);
        let crc = crc32c(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    #[test]
    fn text_roundtrip_unweighted() {
        let el = sample();
        let mut buf = Vec::new();
        write_text_edgelist(&el, &mut buf).unwrap();
        let back = read_text_edgelist(&buf[..]).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
    }

    #[test]
    fn text_roundtrip_weighted() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 0.5).unwrap();
        el.push_weighted(1, 2, 2.25).unwrap();
        let mut buf = Vec::new();
        write_text_edgelist(&el, &mut buf).unwrap();
        let back = read_text_edgelist(&buf[..]).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.weights().unwrap(), el.weights().unwrap());
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n  # indented comment\n1 2\n";
        let el = read_text_edgelist(text.as_bytes()).unwrap();
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text_edgelist("0".as_bytes()).is_err());
        assert!(read_text_edgelist("a b".as_bytes()).is_err());
        assert!(read_text_edgelist("0 1 x".as_bytes()).is_err());
        // Mixing weighted and unweighted lines fails either way around.
        assert!(read_text_edgelist("0 1\n1 2 3.5".as_bytes()).is_err());
        assert!(read_text_edgelist("0 1 3.5\n1 2".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let el = sample();
        let bytes = encode_binary(&el);
        let back = decode_binary(&bytes).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
        assert!(!back.is_weighted());
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let el = weighted_sample();
        let back = decode_binary(&encode_binary(&el)).unwrap();
        assert_eq!(back.edges(), el.edges());
        let a: Vec<u64> = back
            .weights()
            .unwrap()
            .iter()
            .map(|w| w.to_bits())
            .collect();
        let b: Vec<u64> = el.weights().unwrap().iter().map(|w| w.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let el = sample();
        let bytes = encode_binary(&el);
        let mut corrupt = bytes.to_vec();
        corrupt[0] = b'X';
        assert!(matches!(
            decode_binary(&corrupt),
            Err(GraphError::BadMagic { .. })
        ));
        assert!(decode_binary(&bytes[..bytes.len() - 4]).is_err());
        assert!(decode_binary(&bytes[..10]).is_err());
    }

    #[test]
    fn binary_truncated_at_every_offset_errors_cleanly() {
        // Header, payload, and trailer truncation — every prefix of a valid
        // file must produce a typed error, never a panic and never success.
        for el in [sample(), weighted_sample()] {
            let bytes = encode_binary(&el);
            for cut in 0..bytes.len() {
                let res = decode_binary(&bytes[..cut]);
                assert!(res.is_err(), "prefix of {cut}/{} decoded", bytes.len());
            }
            assert!(decode_binary(&bytes).is_ok());
        }
    }

    #[test]
    fn binary_corrupt_any_single_byte_errors() {
        // With checksums on, flipping any single byte anywhere in the file
        // must surface as a typed error.
        for el in [sample(), weighted_sample()] {
            let bytes = encode_binary(&el);
            for i in 0..bytes.len() {
                for mask in [0x01u8, 0x80] {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= mask;
                    assert!(
                        decode_binary(&corrupt).is_err(),
                        "flip {mask:#x} at byte {i} went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn binary_rejects_trailing_garbage() {
        let mut bytes = encode_binary(&sample());
        bytes.push(0);
        assert!(decode_binary(&bytes).is_err());
    }

    #[test]
    fn legacy_files_need_explicit_opt_in() {
        let el = sample();
        let legacy = encode_binary_legacy(&el);
        assert!(matches!(
            decode_binary(&legacy),
            Err(GraphError::UnchecksummedRejected)
        ));
        let opts = LoadOptions::strict().with_allow_unchecksummed(true);
        let back = decode_binary_with(&legacy, &opts).unwrap();
        assert_eq!(back.edges(), el.edges());

        // Weighted legacy files roundtrip too.
        let el = weighted_sample();
        let back = decode_binary_with(&encode_binary_legacy(&el), &opts).unwrap();
        assert_eq!(back.weights().unwrap(), el.weights().unwrap());
    }

    #[test]
    fn unknown_version_nibble_is_rejected() {
        let mut bytes = encode_binary_legacy(&sample());
        bytes[8] = 2 << 4; // future version, no trailer to validate
        let opts = LoadOptions::strict().with_allow_unchecksummed(true);
        assert!(matches!(
            decode_binary_with(&bytes, &opts),
            Err(GraphError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn hostile_header_hits_budget_before_allocation() {
        // A 29-byte file (valid CRC!) declaring 2^60 edges must be refused
        // by the budget check, not by an allocation attempt.
        let crafted = craft_v1(4, 1 << 60, false, &[]);
        match decode_binary(&crafted) {
            // Budget fires on the declared m even though the payload-length
            // check would also have caught the missing bytes.
            Err(GraphError::BudgetExceeded { budget, .. }) => {
                assert_eq!(budget, LoadOptions::DEFAULT_BUDGET);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // Hostile vertex count alone trips it too.
        let crafted = craft_v1(1 << 60, 0, false, &[]);
        assert!(matches!(
            decode_binary(&crafted),
            Err(GraphError::BudgetExceeded { .. })
        ));
        // Edge-count × entry-size overflow is a typed error, not a wrap.
        let crafted = craft_v1(4, u64::MAX / 2, true, &[]);
        assert!(decode_binary(&crafted).is_err());
    }

    #[test]
    fn payload_length_must_match_header_exactly() {
        // Declares 2 edges but carries 1: length mismatch (CRC is valid).
        let payload = [0u8; 8];
        let crafted = craft_v1(4, 2, false, &payload);
        assert!(matches!(decode_binary(&crafted), Err(GraphError::Io(_))));
    }

    #[test]
    fn read_binary_survives_transient_errors() {
        let el = sample();
        let bytes = encode_binary(&el);
        let reader = FaultyReader::new(
            &bytes[..],
            IoFaultPlan::clean().with_seed(11).with_transient_errors(4),
        );
        let (back, stats) = read_binary(reader, &LoadOptions::default()).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(stats.retries, 4);
    }

    #[test]
    fn read_binary_detects_injected_bitflip() {
        let bytes = encode_binary(&sample());
        let reader = FaultyReader::new(
            &bytes[..],
            IoFaultPlan::clean().with_bitflip(HEADER_LEN as u64 + 3, 0x20),
        );
        assert!(read_binary(reader, &LoadOptions::default()).is_err());
    }

    #[test]
    fn read_binary_detects_injected_truncation() {
        let bytes = encode_binary(&sample());
        let reader = FaultyReader::new(
            &bytes[..],
            IoFaultPlan::clean().with_truncation(bytes.len() as u64 - 7),
        );
        assert!(read_binary(reader, &LoadOptions::default()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("grazelle_io_test.bin");
        let el = sample();
        save_binary(&el, &path).unwrap();
        let g = load_graph_binary(&path).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_binary_enforces_file_size_budget() {
        let dir = std::env::temp_dir();
        let path = dir.join("grazelle_io_budget_test.bin");
        save_binary(&sample(), &path).unwrap();
        let opts = LoadOptions::strict().with_max_bytes(8);
        assert!(matches!(
            load_binary_with(&path, &opts),
            Err(GraphError::BudgetExceeded { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_market_general_real() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   3 3 3\n\
                   1 2 1.5\n\
                   2 3 2.5\n\
                   3 1 3.5\n";
        let el = read_matrix_market(mtx.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(el.weights().unwrap(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn matrix_market_symmetric_pattern_mirrors() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   4 4 3\n\
                   2 1\n\
                   3 3\n\
                   4 2\n";
        let el = read_matrix_market(mtx.as_bytes()).unwrap();
        // Off-diagonal entries mirrored; diagonal kept once.
        let mut edges = el.edges().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 3), (2, 2), (3, 1)]);
        assert!(!el.is_weighted());
    }

    #[test]
    fn matrix_market_rejects_malformed() {
        // Wrong object/format.
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 1\n".as_bytes())
                .is_err()
        );
        // Unsupported field type.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Out-of-bounds entry.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n".as_bytes()
        )
        .is_err());
        // Entry-count mismatch.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n".as_bytes()
        )
        .is_err());
        // 1-based index zero.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n".as_bytes()
        )
        .is_err());
        // Empty file.
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_hostile_header_is_refused_before_allocation() {
        // Three lines, declared sizes in the exabytes: the budget check
        // must reject this without reserving anything.
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n\
                   1000000000 1000000000 999999999999999999\n\
                   1 1\n";
        assert!(matches!(
            read_matrix_market(mtx.as_bytes()),
            Err(GraphError::BudgetExceeded { .. })
        ));
        // Dims beyond the u32 vertex space are refused outright.
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n\
                   99999999999 1 1\n\
                   1 1\n";
        assert!(matches!(
            read_matrix_market(mtx.as_bytes()),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        // Declared-size overflow saturates into a budget error, not a wrap.
        let mtx = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n4 4 {}\n1 1 1.0\n",
            u64::MAX
        );
        assert!(matches!(
            read_matrix_market(mtx.as_bytes()),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn matrix_market_rejects_surplus_entries_eagerly() {
        // Declares 1 entry, supplies 3: refused at entry 2, not after
        // buffering everything.
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 1\n1 1\n1 2\n2 1\n";
        assert!(read_matrix_market(mtx.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rectangular_uses_max_dimension() {
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n2 5 1\n1 5\n";
        let el = read_matrix_market(mtx.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.edges(), &[(0, 4)]);
    }

    #[test]
    fn empty_text_gives_empty_list() {
        let el = read_text_edgelist("".as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 0);
        assert_eq!(el.num_edges(), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Text roundtrip is lossless for weighted and unweighted lists.
            #[test]
            fn prop_text_roundtrip(
                edges in proptest::collection::vec((0u32..40, 0u32..40), 1..80),
                weights in proptest::option::of(
                    proptest::collection::vec(-1e6f64..1e6, 80),
                ),
            ) {
                let mut el = EdgeList::new(40);
                match &weights {
                    Some(ws) => {
                        for (&(s, d), &w) in edges.iter().zip(ws) {
                            el.push_weighted(s, d, w).unwrap();
                        }
                    }
                    None => {
                        for &(s, d) in &edges {
                            el.push(s, d).unwrap();
                        }
                    }
                }
                let mut buf = Vec::new();
                write_text_edgelist(&el, &mut buf).unwrap();
                let back = read_text_edgelist(&buf[..]).unwrap();
                prop_assert_eq!(back.edges(), el.edges());
                match (back.weights(), el.weights()) {
                    (Some(a), Some(b)) => prop_assert_eq!(a, b),
                    (None, None) => {}
                    other => prop_assert!(false, "weight presence mismatch {:?}", other.0.map(|w| w.len())),
                }
            }

            /// Binary roundtrip is bit-exact for any weights, including
            /// infinities and NaN payloads.
            #[test]
            fn prop_binary_roundtrip_exact(
                edges in proptest::collection::vec((0u32..30, 0u32..30), 0..60),
                bits in proptest::collection::vec(any::<u64>(), 60),
            ) {
                let mut el = EdgeList::new(30);
                for (&(s, d), &b) in edges.iter().zip(&bits) {
                    el.push_weighted(s, d, f64::from_bits(b)).unwrap();
                }
                let back = decode_binary(&encode_binary(&el)).unwrap();
                prop_assert_eq!(back.edges(), el.edges());
                let a: Vec<u64> = back.weights().unwrap_or(&[]).iter().map(|w| w.to_bits()).collect();
                let b: Vec<u64> = el.weights().unwrap_or(&[]).iter().map(|w| w.to_bits()).collect();
                prop_assert_eq!(a, b);
            }

            /// Encode → corrupt one byte → decode never panics, and with
            /// checksums on it always errors.
            #[test]
            fn prop_corrupt_one_byte_always_errors(
                edges in proptest::collection::vec((0u32..30, 0u32..30), 0..40),
                bits in proptest::collection::vec(any::<u64>(), 40),
                weighted in any::<bool>(),
                pos_seed in any::<usize>(),
                mask in 1u8..=255,
            ) {
                let mut el = EdgeList::new(30);
                if weighted {
                    for (&(s, d), &b) in edges.iter().zip(&bits) {
                        el.push_weighted(s, d, f64::from_bits(b)).unwrap();
                    }
                } else {
                    for &(s, d) in &edges {
                        el.push(s, d).unwrap();
                    }
                }
                let mut bytes = encode_binary(&el);
                let pos = pos_seed % bytes.len();
                bytes[pos] ^= mask;
                // Strict mode: the corruption must be detected.
                prop_assert!(decode_binary(&bytes).is_err(),
                    "corruption at byte {} mask {:#x} undetected", pos, mask);
                // Lenient (legacy-tolerant) mode may accept some corruptions
                // of the non-header bytes, but must never panic.
                let lenient = LoadOptions::strict().with_allow_unchecksummed(true);
                let _ = decode_binary_with(&bytes, &lenient);
            }

            /// Truncation at any offset errors in strict mode — proptest
            /// variant of the exhaustive unit test, over arbitrary lists.
            #[test]
            fn prop_truncation_always_errors(
                edges in proptest::collection::vec((0u32..30, 0u32..30), 1..40),
                cut_seed in any::<usize>(),
            ) {
                let el = EdgeList::from_pairs(30, &edges).unwrap();
                let bytes = encode_binary(&el);
                let cut = cut_seed % bytes.len();
                prop_assert!(decode_binary(&bytes[..cut]).is_err());
            }
        }
    }
}

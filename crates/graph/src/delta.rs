//! Append-only delta segments over an immutable base graph.
//!
//! The Grazelle structures ([`Csr`](crate::csr::Csr), Vector-Sparse) are
//! built once and never mutated — every read path depends on that. Updates
//! therefore live *beside* the base: an [`UpdateBatch`] describes one round
//! of edge inserts and deletes, and [`DeltaSegments`] accumulates batches as
//! append-only insert segments plus a tombstone set for deleted base edges.
//! The engines consume the pending inserts as a second (small) prepared
//! graph overlaid on the base; tombstones cannot be overlaid (a pull or push
//! phase has no cheap per-edge filter), so deletions force a merge — a full
//! rebuild of the base from [`DeltaSegments::merged_edgelist`] through the
//! parallel build pipeline.
//!
//! This module is pure structure: it knows nothing about prepared graphs or
//! engines. The versioned handle that owns the base/delta pair and decides
//! when to merge lives in `grazelle-core`.

use crate::edgelist::EdgeList;
use crate::graph::Graph;
use crate::types::{GraphError, VertexId};
use std::collections::HashSet;

/// One round of edge updates, applied atomically: all inserts and deletes
/// in a batch become visible at a single new version.
///
/// Batches are unweighted — weighted graphs keep their static build path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    inserts: Vec<(VertexId, VertexId)>,
    deletes: Vec<(VertexId, VertexId)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// A batch of inserts only — the common streaming case.
    pub fn from_inserts(edges: &[(VertexId, VertexId)]) -> Self {
        UpdateBatch {
            inserts: edges.to_vec(),
            deletes: Vec::new(),
        }
    }

    /// Queues an edge insertion.
    pub fn insert(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.inserts.push((src, dst));
        self
    }

    /// Queues an edge deletion.
    pub fn delete(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.deletes.push((src, dst));
        self
    }

    /// Queued insertions, in submission order.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// Queued deletions, in submission order.
    pub fn deletes(&self) -> &[(VertexId, VertexId)] {
        &self.deletes
    }

    /// Whether the batch carries no updates at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total queued updates (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// What one [`DeltaSegments::record`] call actually changed, after
/// deduplication against the base and the pending segments. Carries the
/// effective edges themselves: incremental result maintenance seeds its
/// frontier from exactly these endpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Inserts that took effect (absent from base and pending).
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Deletes that took effect (present in base or pending).
    pub deleted: Vec<(VertexId, VertexId)>,
    /// Updates ignored as no-ops (duplicate inserts, deletes of absent
    /// edges).
    pub ignored: usize,
}

/// Accumulated, versioned edge updates over one immutable base graph.
///
/// Inserts append to segments (one per recorded batch); deletes become
/// tombstones. A tombstone masks every copy of a matching base edge *and*
/// any matching pending insert at merge time. The structure never mutates
/// the base — [`merged_edgelist`](DeltaSegments::merged_edgelist) produces
/// the edge list a rebuild should consume.
#[derive(Debug, Clone)]
pub struct DeltaSegments {
    num_vertices: usize,
    /// Append-only insert segments, one per recorded batch.
    segments: Vec<Vec<(VertexId, VertexId)>>,
    /// Deleted edges, deduplicated; sorted lazily by `tombstones()`.
    tombstones: Vec<(VertexId, VertexId)>,
    /// Fast membership for pending inserts (mirrors `segments`).
    pending_set: HashSet<(VertexId, VertexId)>,
    /// Fast membership for tombstones (mirrors `tombstones`).
    tombstone_set: HashSet<(VertexId, VertexId)>,
    /// Monotone version counter: one tick per recorded batch.
    version: u64,
}

impl DeltaSegments {
    /// Empty delta over a graph with `num_vertices` vertices, at version 0.
    pub fn new(num_vertices: usize) -> Self {
        DeltaSegments {
            num_vertices,
            segments: Vec::new(),
            tombstones: Vec::new(),
            pending_set: HashSet::new(),
            tombstone_set: HashSet::new(),
            version: 0,
        }
    }

    /// Current version: the number of batches recorded since creation (or
    /// since the seed version passed to [`set_version`](Self::set_version)).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-seeds the version counter (used when replaying persisted deltas
    /// so the restored handle reports the pre-crash version).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Vertex-set size the delta validates endpoints against.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Pending (not yet merged) inserted edges, oldest segment first.
    pub fn pending_inserts(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.segments.iter().flatten().copied()
    }

    /// Number of pending inserted edges.
    pub fn pending_len(&self) -> usize {
        self.pending_set.len()
    }

    /// Pending tombstones (deleted edges awaiting a merge).
    pub fn tombstones(&self) -> &[(VertexId, VertexId)] {
        &self.tombstones
    }

    /// Whether nothing is pending (no inserts, no tombstones).
    pub fn is_empty(&self) -> bool {
        self.pending_set.is_empty() && self.tombstones.is_empty()
    }

    /// Records one batch against `base`, deduplicating: an insert is a no-op
    /// when the edge already exists (in the base and not tombstoned, or in a
    /// pending segment); a delete is a no-op when it does not. Deleting a
    /// pending insert tombstones it; re-inserting a tombstoned base edge
    /// clears the tombstone. Every endpoint must be `< num_vertices` and the
    /// base must be unweighted — violations reject the whole batch before
    /// anything is recorded.
    pub fn record(&mut self, base: &Graph, batch: &UpdateBatch) -> Result<DeltaRecord, GraphError> {
        if base.is_weighted() {
            return Err(GraphError::Io(
                "delta updates require an unweighted base graph".into(),
            ));
        }
        debug_assert_eq!(base.num_vertices(), self.num_vertices);
        for &(u, v) in batch.inserts().iter().chain(batch.deletes()) {
            if u as usize >= self.num_vertices || v as usize >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    num_vertices: self.num_vertices as u64,
                });
            }
        }

        let in_base =
            |e: &(VertexId, VertexId)| base.out_neighbors(e.0).binary_search(&e.1).is_ok();
        let mut rec = DeltaRecord::default();
        let mut segment = Vec::new();
        // Deletes first: a delete+insert of the same edge within one batch
        // nets out to the edge being present, matching submission order for
        // the common "replace" idiom.
        for e in batch.deletes() {
            if self.pending_set.remove(e) {
                // Deleting a not-yet-merged insert: tombstone it so the
                // merge filters it out of every (append-only) segment.
                self.tombstone_set.insert(*e);
                self.tombstones.push(*e);
                rec.deleted.push(*e);
            } else if in_base(e) && self.tombstone_set.insert(*e) {
                self.tombstones.push(*e);
                rec.deleted.push(*e);
            } else {
                rec.ignored += 1;
            }
        }
        for e in batch.inserts() {
            if self.tombstone_set.remove(e) {
                // Re-insert of a tombstoned edge: clear the tombstone. The
                // edge may still sit in an old segment; putting it in the
                // pending set keeps later duplicates no-ops either way.
                self.tombstones.retain(|t| t != e);
                if !in_base(e) {
                    self.pending_set.insert(*e);
                    segment.push(*e);
                }
                rec.inserted.push(*e);
            } else if in_base(e) || !self.pending_set.insert(*e) {
                rec.ignored += 1;
            } else {
                segment.push(*e);
                rec.inserted.push(*e);
            }
        }
        self.segments.push(segment);
        self.version += 1;
        Ok(rec)
    }

    /// The edge list a merge rebuild should consume: base edges minus
    /// tombstones, then pending inserts minus tombstones, in deterministic
    /// (base order, then segment order) sequence.
    pub fn merged_edgelist(&self, base: &Graph) -> EdgeList {
        let dead = &self.tombstone_set;
        let mut el =
            EdgeList::with_capacity(self.num_vertices, base.num_edges() + self.pending_set.len());
        for src in 0..self.num_vertices as VertexId {
            for &dst in base.out_neighbors(src) {
                if !dead.contains(&(src, dst)) {
                    el.push(src, dst).expect("base edge in range");
                }
            }
        }
        // A delete+re-insert cycle can leave one live edge in two segments;
        // emit the first copy only (the segments are append-only, so the
        // extra copy cannot be spliced out where it sits).
        let mut seen = HashSet::new();
        for e in self.pending_inserts() {
            if !dead.contains(&e) && seen.insert(e) {
                el.push(e.0, e.1).expect("pending edge validated at record");
            }
        }
        el
    }

    /// The pending inserts alone as an edge list — what the overlay graph
    /// is built from. Only meaningful while no tombstones are pending (the
    /// owning handle merges on every delete).
    pub fn insert_edgelist(&self) -> EdgeList {
        let mut el = EdgeList::with_capacity(self.num_vertices, self.pending_set.len());
        let mut seen = HashSet::new();
        for e in self.pending_inserts() {
            if !self.tombstone_set.contains(&e) && seen.insert(e) {
                el.push(e.0, e.1).expect("pending edge validated at record");
            }
        }
        el
    }

    /// Drops all pending segments and tombstones after a merge; the version
    /// counter keeps running.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.tombstones.clear();
        self.pending_set.clear();
        self.tombstone_set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Graph {
        let el = EdgeList::from_pairs(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        Graph::from_edgelist(&el).unwrap()
    }

    #[test]
    fn inserts_dedup_against_base_and_pending() {
        let g = base();
        let mut d = DeltaSegments::new(6);
        let rec = d
            .record(
                &g,
                UpdateBatch::new()
                    .insert(0, 2)
                    .insert(0, 1) // already in base
                    .insert(0, 2), // duplicate within the batch
            )
            .unwrap();
        assert_eq!(rec.inserted.len(), 1);
        assert_eq!(rec.ignored, 2);
        assert_eq!(d.pending_len(), 1);
        assert_eq!(d.version(), 1);
        // Second batch re-inserting the same edge is a no-op too.
        let rec = d.record(&g, &UpdateBatch::from_inserts(&[(0, 2)])).unwrap();
        assert_eq!(rec.inserted.len(), 0);
        assert_eq!(rec.ignored, 1);
        assert_eq!(d.version(), 2);
    }

    #[test]
    fn deletes_tombstone_base_edges_and_pending_inserts() {
        let g = base();
        let mut d = DeltaSegments::new(6);
        d.record(&g, &UpdateBatch::from_inserts(&[(3, 4)])).unwrap();
        let rec = d
            .record(
                &g,
                UpdateBatch::new()
                    .delete(0, 1) // base edge
                    .delete(3, 4) // pending insert
                    .delete(5, 0), // absent
            )
            .unwrap();
        assert_eq!(rec.deleted.len(), 2);
        assert_eq!(rec.ignored, 1);
        let merged = d.merged_edgelist(&g);
        let mut edges = merged.edges().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 2), (2, 3), (4, 5)]);
        // The overlay edge list must be empty: the one pending insert died.
        assert_eq!(d.insert_edgelist().num_edges(), 0);
    }

    #[test]
    fn reinsert_clears_a_tombstone() {
        let g = base();
        let mut d = DeltaSegments::new(6);
        d.record(&g, UpdateBatch::new().delete(0, 1)).unwrap();
        assert_eq!(d.tombstones().len(), 1);
        let rec = d.record(&g, &UpdateBatch::from_inserts(&[(0, 1)])).unwrap();
        assert_eq!(rec.inserted.len(), 1);
        assert!(d.tombstones().is_empty());
        let mut edges = d.merged_edgelist(&g).edges().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (4, 5)]);
    }

    #[test]
    fn delete_then_insert_in_one_batch_leaves_edge_present() {
        let g = base();
        let mut d = DeltaSegments::new(6);
        d.record(&g, UpdateBatch::new().delete(0, 1).insert(0, 1))
            .unwrap();
        let mut edges = d.merged_edgelist(&g).edges().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (4, 5)]);
    }

    #[test]
    fn out_of_range_endpoint_rejects_the_whole_batch() {
        let g = base();
        let mut d = DeltaSegments::new(6);
        let err = d.record(&g, UpdateBatch::new().insert(0, 3).insert(0, 6));
        assert!(matches!(err, Err(GraphError::VertexOutOfRange { .. })));
        assert_eq!(d.pending_len(), 0, "nothing recorded on rejection");
        assert_eq!(d.version(), 0);
    }

    #[test]
    fn weighted_base_is_rejected() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 2.5).unwrap();
        let g = Graph::from_edgelist(&el).unwrap();
        let mut d = DeltaSegments::new(3);
        assert!(d.record(&g, &UpdateBatch::from_inserts(&[(1, 2)])).is_err());
    }

    #[test]
    fn merged_edgelist_roundtrips_through_a_rebuild() {
        let g = base();
        let mut d = DeltaSegments::new(6);
        d.record(&g, UpdateBatch::new().insert(5, 0).delete(2, 3))
            .unwrap();
        let merged = Graph::from_edgelist(&d.merged_edgelist(&g)).unwrap();
        assert_eq!(merged.num_edges(), 4);
        assert_eq!(merged.out_neighbors(5), &[0]);
        assert_eq!(merged.out_neighbors(2), &[] as &[VertexId]);
        // And the delta can keep recording against the new base once
        // cleared — the merge handshake the versioned handle performs.
        d.clear();
        assert!(d.is_empty());
        let rec = d
            .record(&merged, &UpdateBatch::from_inserts(&[(2, 3)]))
            .unwrap();
        assert_eq!(rec.inserted.len(), 1);
    }
}

//! Vertex reordering (relabeling) transforms.
//!
//! The paper situates scheduler awareness in "a long line of work that
//! attempts to improve both the data locality and the parallelization of
//! irregular applications", citing data-layout reorganization in
//! particular (§3, Related Work). These transforms are that lever at the
//! graph level: relabeling vertices changes nothing semantically (results
//! permute), but changes the memory-access pattern of every engine:
//!
//! * [`by_degree`] — hubs first: clusters the hottest property-array
//!   entries into the fewest cache lines (degree-sorted, a common
//!   preprocessing step for scale-free graphs).
//! * [`bfs_order`] — breadth-first relabeling: neighbors get nearby ids
//!   (a light-weight Cuthill–McKee-style bandwidth reduction).
//! * [`apply_permutation`] — applies any caller-supplied relabeling.

use crate::edgelist::EdgeList;
use crate::graph::Graph;
use crate::types::VertexId;

/// A vertex relabeling: `perm[old] = new`. Always a bijection on
/// `0..num_vertices`.
pub type Permutation = Vec<VertexId>;

/// Validates that `perm` is a bijection.
pub fn is_permutation(perm: &[VertexId]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Inverts a permutation: `inv[new] = old`.
pub fn invert(perm: &[VertexId]) -> Permutation {
    let mut inv = vec![0 as VertexId; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as VertexId;
    }
    inv
}

/// Relabels every edge of `g` through `perm`, returning the new graph.
pub fn apply_permutation(g: &Graph, perm: &[VertexId]) -> Graph {
    assert_eq!(perm.len(), g.num_vertices(), "permutation length mismatch");
    debug_assert!(is_permutation(perm));
    let mut el = EdgeList::with_capacity(g.num_vertices(), g.num_edges());
    let weighted = g.is_weighted();
    for v in 0..g.num_vertices() as VertexId {
        let nbrs = g.out_neighbors(v);
        if weighted {
            let ws = g.out_csr().neighbor_weights(v).unwrap();
            for (&d, &w) in nbrs.iter().zip(ws) {
                el.push_weighted(perm[v as usize], perm[d as usize], w)
                    .unwrap();
            }
        } else {
            for &d in nbrs {
                el.push(perm[v as usize], perm[d as usize]).unwrap();
            }
        }
    }
    Graph::from_edgelist(&el)
        .expect("relabeling preserves validity")
        .with_name(g.name())
}

/// Descending-in-degree ordering: the highest-in-degree vertex becomes
/// vertex 0. Ties broken by original id (deterministic).
pub fn by_degree(g: &Graph) -> (Graph, Permutation) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.in_degree(v)), v));
    // order[new] = old  =>  perm[old] = new
    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    (apply_permutation(g, &perm), perm)
}

/// Breadth-first ordering from `root`; unreachable vertices keep their
/// relative order after all reachable ones.
pub fn bfs_order(g: &Graph, root: VertexId) -> (Graph, Permutation) {
    let n = g.num_vertices();
    assert!((root as usize) < n);
    let mut perm = vec![VertexId::MAX; n];
    let mut next_id: VertexId = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    perm[root as usize] = 0;
    next_id += 1;
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v) {
            if perm[w as usize] == VertexId::MAX {
                perm[w as usize] = next_id;
                next_id += 1;
                queue.push_back(w);
            }
        }
    }
    for p in perm.iter_mut() {
        if *p == VertexId::MAX {
            *p = next_id;
            next_id += 1;
        }
    }
    (apply_permutation(g, &perm), perm)
}

/// Mean absolute id distance across edges — the "bandwidth" proxy that
/// BFS ordering reduces on meshes (smaller = neighbors closer in memory).
pub fn mean_edge_span(g: &Graph) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let mut total = 0u64;
    for v in 0..g.num_vertices() as VertexId {
        for &d in g.out_neighbors(v) {
            total += (v as i64 - d as i64).unsigned_abs();
        }
    }
    total as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::grid_mesh;
    use crate::gen::rmat::{rmat, RmatConfig};

    fn scale_free() -> Graph {
        Graph::from_edgelist(&rmat(&RmatConfig::graph500(9, 6.0, 77))).unwrap()
    }

    #[test]
    fn permutation_helpers() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert_eq!(invert(&[2, 0, 1]), vec![1, 2, 0]);
    }

    #[test]
    fn relabeling_preserves_structure() {
        let g = scale_free();
        let (rg, perm) = by_degree(&g);
        assert_eq!(rg.num_vertices(), g.num_vertices());
        assert_eq!(rg.num_edges(), g.num_edges());
        // Degrees are carried along the permutation.
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(g.in_degree(v), rg.in_degree(perm[v as usize]), "v{v}");
            assert_eq!(g.out_degree(v), rg.out_degree(perm[v as usize]));
        }
        // Edges map exactly.
        for v in 0..g.num_vertices() as VertexId {
            let mut mapped: Vec<VertexId> = g
                .out_neighbors(v)
                .iter()
                .map(|&d| perm[d as usize])
                .collect();
            mapped.sort_unstable();
            assert_eq!(mapped, rg.out_neighbors(perm[v as usize]));
        }
    }

    #[test]
    fn by_degree_puts_hubs_first() {
        let g = scale_free();
        let (rg, _) = by_degree(&g);
        let degs: Vec<u32> = (0..rg.num_vertices() as VertexId)
            .map(|v| rg.in_degree(v))
            .collect();
        for w in degs.windows(2) {
            assert!(w[0] >= w[1], "in-degrees must be non-increasing");
        }
    }

    #[test]
    fn bfs_order_reduces_mesh_span_vs_random() {
        // Scramble a mesh, then show BFS ordering restores locality.
        let el = grid_mesh(24, 24, 1.0, 0);
        let g = Graph::from_edgelist(&el).unwrap();
        // Random-ish scramble via a fixed stride permutation.
        let n = g.num_vertices();
        let stride = 241; // coprime with 576
        let perm: Vec<VertexId> = (0..n).map(|v| ((v * stride) % n) as VertexId).collect();
        assert!(is_permutation(&perm));
        let scrambled = apply_permutation(&g, &perm);
        let (ordered, _) = bfs_order(&scrambled, 0);
        assert!(
            mean_edge_span(&ordered) < mean_edge_span(&scrambled) / 2.0,
            "BFS order should at least halve the span: {} vs {}",
            mean_edge_span(&ordered),
            mean_edge_span(&scrambled)
        );
    }

    #[test]
    fn weighted_graph_keeps_weights_through_relabeling() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 1.5).unwrap();
        el.push_weighted(1, 2, 2.5).unwrap();
        let g = Graph::from_edgelist(&el).unwrap();
        let perm = vec![2, 0, 1]; // 0->2, 1->0, 2->1
        let rg = apply_permutation(&g, &perm);
        assert!(rg.is_weighted());
        // Edge (0,1,1.5) becomes (2,0,1.5).
        assert_eq!(rg.out_neighbors(2), &[0]);
        assert_eq!(rg.out_csr().neighbor_weights(2).unwrap(), &[1.5]);
        assert_eq!(rg.out_neighbors(0), &[1]);
        assert_eq!(rg.out_csr().neighbor_weights(0).unwrap(), &[2.5]);
    }

    #[test]
    fn bfs_order_handles_unreachable() {
        let el = EdgeList::from_pairs(5, &[(0, 1), (1, 0), (3, 4)]).unwrap();
        let g = Graph::from_edgelist(&el).unwrap();
        let (rg, perm) = bfs_order(&g, 0);
        assert!(is_permutation(&perm));
        assert_eq!(rg.num_edges(), 3);
        assert_eq!(perm[0], 0);
        assert_eq!(perm[1], 1);
    }
}

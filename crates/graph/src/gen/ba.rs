//! Barabási–Albert preferential-attachment generator.
//!
//! Produces scale-free graphs by a growth process instead of R-MAT's
//! recursive matrix: each new vertex attaches `m` edges to existing
//! vertices with probability proportional to their current degree. Used as
//! an independent source of power-law degree distributions in tests (R-MAT
//! and BA skew arise from different mechanisms, so invariants that hold on
//! both are more trustworthy).

use crate::edgelist::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Barabási–Albert graph: `num_vertices` vertices, each new
/// vertex attaching `m` out-edges preferentially. The first `m + 1`
/// vertices form a seed clique-ish chain.
pub fn barabasi_albert(num_vertices: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1, "attachment count must be positive");
    assert!(
        num_vertices > m,
        "need more vertices than attachments per vertex"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(num_vertices, num_vertices * m);
    // Repeated-endpoints list: sampling uniformly from it IS
    // degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * num_vertices * m);

    // Seed: a chain over the first m+1 vertices.
    for v in 0..m as VertexId {
        el.push(v, v + 1).unwrap();
        endpoints.push(v);
        endpoints.push(v + 1);
    }

    for v in (m + 1)..num_vertices {
        let v = v as VertexId;
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            el.push(v, t).unwrap();
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic_and_sized() {
        let a = barabasi_albert(500, 3, 11);
        let b = barabasi_albert(500, 3, 11);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.num_vertices(), 500);
        // 3 seed edges + 3 per added vertex (minus rare guard shortfalls).
        assert!(a.num_edges() >= 3 + (500 - 4) * 3 - 10);
    }

    #[test]
    fn produces_power_law_like_skew() {
        let el = barabasi_albert(2000, 4, 3);
        let s = DegreeStats::from_degrees(&el.in_degrees());
        // Preferential attachment: heavy tail (max >> mean, high CV).
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
        assert!(s.cv > 1.0, "cv {}", s.cv);
    }

    #[test]
    fn no_self_loops_or_duplicate_attachments() {
        let el = barabasi_albert(300, 5, 9);
        assert!(el.edges().iter().all(|&(s, d)| s != d));
        let mut per_source = std::collections::HashMap::new();
        for &(s, d) in el.edges() {
            assert!(
                per_source
                    .entry(s)
                    .or_insert_with(std::collections::HashSet::new)
                    .insert(d),
                "duplicate attachment {s}->{d}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn too_few_vertices_rejected() {
        barabasi_albert(3, 3, 0);
    }
}

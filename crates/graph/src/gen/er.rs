//! Erdős–Rényi G(n, m) generator — the unskewed control used by tests and
//! by the Figure 9b packing-efficiency sweep's low-variance end.

use crate::edgelist::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Samples `num_edges` directed edges uniformly (with replacement, then
/// optional simplification).
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64, simplify: bool) -> EdgeList {
    assert!(num_vertices >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(num_vertices, num_edges);
    for _ in 0..num_edges {
        let s = rng.random_range(0..num_vertices) as VertexId;
        let d = rng.random_range(0..num_vertices) as VertexId;
        el.push(s, d).unwrap();
    }
    if simplify {
        el.remove_self_loops();
        el.sort_and_dedup();
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_without_simplify() {
        let el = erdos_renyi(100, 500, 1, false);
        assert_eq!(el.num_vertices(), 100);
        assert_eq!(el.num_edges(), 500);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            erdos_renyi(50, 200, 7, true).edges(),
            erdos_renyi(50, 200, 7, true).edges()
        );
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let el = erdos_renyi(1 << 10, 1 << 14, 3, false);
        let deg = el.out_degrees();
        let avg = 16.0;
        let max = *deg.iter().max().unwrap() as f64;
        // Poisson(16) max over 1024 samples stays well under 4x the mean.
        assert!(max < 4.0 * avg, "max degree {max} too skewed for ER");
    }
}

//! Named stand-ins for the paper's six evaluation graphs (Table 1).
//!
//! | Abbr | Paper graph   | Paper |V| / |E|   | Shape preserved here            |
//! |------|---------------|-------------------|---------------------------------|
//! | C    | cit-Patents   | 3.7 M / 16.5 M    | avg degree ≈ 4.5, mild skew     |
//! | D    | dimacs-usa    | 23.9 M / 58.3 M   | mesh, degree ≈ 2.4, no skew     |
//! | L    | livejournal   | 4.8 M / 69.0 M    | avg degree ≈ 14, scale-free     |
//! | T    | twitter-2010  | 41.7 M / 1.47 B   | avg degree ≈ 35, heavy skew     |
//! | F    | friendster    | 65.6 M / 1.81 B   | avg degree ≈ 28, moderate skew  |
//! | U    | uk-2007       | 105.9 M / 3.74 B  | avg degree ≈ 35, heaviest skew  |
//!
//! Each stand-in is scaled down by a configurable factor (DESIGN.md §4): the
//! default `scale_shift = 0` targets 10⁴–10⁵ vertices so that the full
//! experiment matrix runs on a laptop. The *relative* ordering of skew is
//! faithful — the uk-2007 stand-in uses the most concentrated R-MAT
//! parameters, so it has by far the most very-high-in-degree vertices,
//! matching the paper's characterization ("over 10× more vertices having
//! in-degree of at least 100,000" than twitter-2010).

use crate::gen::grid::grid_mesh;
use crate::gen::rmat::{rmat, RmatConfig};
use crate::graph::Graph;

/// The six Table-1 stand-ins, by paper abbreviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// cit-Patents stand-in.
    CitPatents,
    /// dimacs-usa stand-in (mesh).
    DimacsUsa,
    /// livejournal stand-in.
    LiveJournal,
    /// twitter-2010 stand-in.
    Twitter2010,
    /// friendster stand-in.
    Friendster,
    /// uk-2007 stand-in (most skewed).
    Uk2007,
}

impl Dataset {
    /// All six datasets in the paper's presentation order (C D L T F U).
    pub fn all() -> [Dataset; 6] {
        [
            Dataset::CitPatents,
            Dataset::DimacsUsa,
            Dataset::LiveJournal,
            Dataset::Twitter2010,
            Dataset::Friendster,
            Dataset::Uk2007,
        ]
    }

    /// The single-letter abbreviation used in the paper's plots.
    pub fn abbr(&self) -> &'static str {
        match self {
            Dataset::CitPatents => "C",
            Dataset::DimacsUsa => "D",
            Dataset::LiveJournal => "L",
            Dataset::Twitter2010 => "T",
            Dataset::Friendster => "F",
            Dataset::Uk2007 => "U",
        }
    }

    /// Full stand-in name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::CitPatents => "cit-patents-synth",
            Dataset::DimacsUsa => "dimacs-usa-synth",
            Dataset::LiveJournal => "livejournal-synth",
            Dataset::Twitter2010 => "twitter-2010-synth",
            Dataset::Friendster => "friendster-synth",
            Dataset::Uk2007 => "uk-2007-synth",
        }
    }

    /// The generator specification at default scale.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::CitPatents => DatasetSpec::Rmat(RmatConfig {
                scale: 14,
                edge_factor: 4.5,
                a: 0.45,
                b: 0.22,
                c: 0.22,
                seed: 0xC17,
                permute: true,
                simplify: true,
            }),
            Dataset::DimacsUsa => DatasetSpec::Grid {
                width: 160,
                height: 160,
                keep_prob: 0.61,
                seed: 0xD1A,
            },
            Dataset::LiveJournal => DatasetSpec::Rmat(RmatConfig {
                scale: 14,
                edge_factor: 14.4,
                a: 0.57,
                b: 0.19,
                c: 0.19,
                seed: 0x11F,
                permute: true,
                simplify: true,
            }),
            Dataset::Twitter2010 => DatasetSpec::Rmat(RmatConfig {
                scale: 15,
                edge_factor: 35.0,
                a: 0.57,
                b: 0.19,
                c: 0.19,
                seed: 0x717,
                permute: true,
                simplify: true,
            }),
            Dataset::Friendster => DatasetSpec::Rmat(RmatConfig {
                scale: 15,
                edge_factor: 27.6,
                a: 0.52,
                b: 0.21,
                c: 0.21,
                seed: 0xF51,
                permute: true,
                simplify: true,
            }),
            Dataset::Uk2007 => DatasetSpec::Rmat(RmatConfig {
                scale: 15,
                edge_factor: 35.3,
                a: 0.68,
                b: 0.14,
                c: 0.14,
                seed: 0x007,
                permute: true,
                simplify: true,
            }),
        }
    }

    /// Builds the stand-in at default scale.
    pub fn build(&self) -> Graph {
        self.build_scaled(0)
    }

    /// Builds the stand-in with the vertex count scaled by `2^scale_shift`
    /// (negative shrinks, positive grows; mesh dimensions scale by
    /// `2^(shift/2)` per side, approximately).
    pub fn build_scaled(&self, scale_shift: i32) -> Graph {
        let el = match self.spec() {
            DatasetSpec::Rmat(mut cfg) => {
                let scale = (cfg.scale as i64 + scale_shift as i64).clamp(4, 26) as u32;
                cfg.scale = scale;
                rmat(&cfg)
            }
            DatasetSpec::Grid {
                width,
                height,
                keep_prob,
                seed,
            } => {
                let factor = 2f64.powf(scale_shift as f64 / 2.0);
                let w = ((width as f64 * factor).round() as usize).max(2);
                let h = ((height as f64 * factor).round() as usize).max(2);
                grid_mesh(w, h, keep_prob, seed)
            }
        };
        Graph::from_edgelist(&el)
            .expect("generators produce non-empty graphs")
            .with_name(self.name())
    }
}

/// How a dataset stand-in is generated.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// R-MAT with the given configuration.
    Rmat(RmatConfig),
    /// Partial mesh with the given dimensions.
    Grid {
        width: usize,
        height: usize,
        keep_prob: f64,
        seed: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_build_and_are_nonempty() {
        for ds in Dataset::all() {
            let g = ds.build_scaled(-4); // tiny for test speed
            assert!(g.num_vertices() > 0, "{:?}", ds);
            assert!(g.num_edges() > 0, "{:?}", ds);
            assert_eq!(g.name(), ds.name());
        }
    }

    #[test]
    fn abbreviations_match_paper_order() {
        let abbrs: Vec<_> = Dataset::all().iter().map(|d| d.abbr()).collect();
        assert_eq!(abbrs, ["C", "D", "L", "T", "F", "U"]);
    }

    #[test]
    fn average_degrees_track_table1() {
        // avg degree ordering: D < C < L < F < T ≈ U (paper Table 1).
        let avg = |d: Dataset| d.build_scaled(-4).avg_degree();
        let d = avg(Dataset::DimacsUsa);
        let c = avg(Dataset::CitPatents);
        let l = avg(Dataset::LiveJournal);
        let t = avg(Dataset::Twitter2010);
        assert!(
            d < c,
            "mesh ({d:.2}) should be sparser than citations ({c:.2})"
        );
        assert!(
            c < l,
            "citations ({c:.2}) should be sparser than livejournal ({l:.2})"
        );
        assert!(
            l < t,
            "livejournal ({l:.2}) should be sparser than twitter ({t:.2})"
        );
    }

    #[test]
    fn uk2007_standin_is_most_skewed() {
        // The paper: uk-2007 has >10x more very-high-in-degree vertices than
        // twitter-2010. At our scale, compare the count of vertices whose
        // in-degree exceeds 64x the average.
        let count_heavy = |ds: Dataset| {
            let g = ds.build_scaled(-3);
            let thresh = (64.0 * g.avg_degree()) as u32;
            (0..g.num_vertices() as u32)
                .filter(|&v| g.in_degree(v) > thresh)
                .count()
        };
        let t = count_heavy(Dataset::Twitter2010);
        let u = count_heavy(Dataset::Uk2007);
        assert!(
            u > t,
            "uk-2007 stand-in should have more heavy vertices (got U={u}, T={t})"
        );
    }

    #[test]
    fn mesh_standin_has_consistent_degrees() {
        let g = Dataset::DimacsUsa.build_scaled(-2);
        let max_out = (0..g.num_vertices() as u32)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        assert!(max_out <= 4, "mesh degree bounded by 4, got {max_out}");
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::LiveJournal.build_scaled(-5);
        let b = Dataset::LiveJournal.build_scaled(-5);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.out_csr().edges(), b.out_csr().edges());
    }
}

//! Road-network-style partial mesh generator.
//!
//! The paper's `dimacs-usa` input is "unique in that it is a mesh network,
//! having relatively small and consistent vertex degrees" (§6). This
//! generator produces exactly that shape: a `width × height` lattice whose
//! edges exist with probability `keep_prob` (both directions together, so
//! the result stays symmetric like a road network). With `keep_prob ≈ 0.61`
//! the average directed degree lands near dimacs-usa's 2.44.

use crate::edgelist::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a partial 4-neighbor mesh.
///
/// Vertices are numbered row-major; each lattice edge (right and down
/// neighbors) is kept with probability `keep_prob` and, when kept, inserted
/// in both directions.
pub fn grid_mesh(width: usize, height: usize, keep_prob: f64, seed: u64) -> EdgeList {
    assert!(width >= 1 && height >= 1, "degenerate mesh");
    assert!(
        (0.0..=1.0).contains(&keep_prob),
        "keep_prob must be a probability"
    );
    let n = width * height;
    let est = (2.0 * 2.0 * n as f64 * keep_prob) as usize;
    let mut el = EdgeList::with_capacity(n, est);
    let mut rng = StdRng::seed_from_u64(seed);

    let id = |x: usize, y: usize| (y * width + x) as VertexId;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.random::<f64>() < keep_prob {
                el.push(id(x, y), id(x + 1, y)).unwrap();
                el.push(id(x + 1, y), id(x, y)).unwrap();
            }
            if y + 1 < height && rng.random::<f64>() < keep_prob {
                el.push(id(x, y), id(x, y + 1)).unwrap();
                el.push(id(x, y + 1), id(x, y)).unwrap();
            }
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_has_exact_edge_count() {
        // width*height lattice: (w-1)*h horizontal + w*(h-1) vertical
        // undirected edges, times 2 for direction.
        let el = grid_mesh(5, 4, 1.0, 0);
        assert_eq!(el.num_vertices(), 20);
        assert_eq!(el.num_edges(), 2 * ((4 * 4) + (5 * 3)));
    }

    #[test]
    fn is_symmetric() {
        let el = grid_mesh(8, 8, 0.6, 9);
        let set: std::collections::HashSet<_> = el.edges().iter().copied().collect();
        for &(s, d) in el.edges() {
            assert!(set.contains(&(d, s)), "missing reverse of ({s},{d})");
        }
    }

    #[test]
    fn degrees_are_small_and_consistent() {
        let el = grid_mesh(40, 40, 1.0, 1);
        let deg = el.out_degrees();
        assert!(deg.iter().all(|&d| (2..=4).contains(&d)));
    }

    #[test]
    fn keep_prob_thins_the_mesh() {
        let full = grid_mesh(30, 30, 1.0, 3).num_edges() as f64;
        let thin = grid_mesh(30, 30, 0.5, 3).num_edges() as f64;
        let ratio = thin / full;
        assert!(
            (0.4..0.6).contains(&ratio),
            "expected roughly half the edges, got ratio {ratio}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            grid_mesh(10, 10, 0.7, 5).edges(),
            grid_mesh(10, 10, 0.7, 5).edges()
        );
    }

    #[test]
    fn single_row_mesh() {
        let el = grid_mesh(4, 1, 1.0, 0);
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 6); // 3 undirected, both directions
    }
}

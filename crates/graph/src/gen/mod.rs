//! Seeded synthetic graph generators.
//!
//! The paper evaluates on six real-world graphs (Table 1). Those datasets
//! are multi-gigabyte downloads we cannot assume; per DESIGN.md §4 we
//! substitute seeded generators whose outputs preserve the properties the
//! evaluation actually exercises — average degree (vector packing
//! efficiency, write intensity) and degree skew (write-conflict rates, load
//! imbalance):
//!
//! * [`rmat`](mod@rmat) — the R-MAT recursive-matrix generator \[Chakrabarti et al.,
//!   SDM '04\], also what the paper itself uses for its synthetic suite in
//!   Figure 9b.
//! * [`grid`] — a road-network-style partial mesh (dimacs-usa stand-in).
//! * [`er`] — Erdős–Rényi G(n, m) used by tests as an unskewed control.
//! * [`ba`] — Barabási–Albert preferential attachment, an independent
//!   source of power-law skew for cross-validating invariants.
//! * [`datasets`] — the named Table-1 stand-ins.

pub mod ba;
pub mod datasets;
pub mod er;
pub mod grid;
pub mod rmat;

pub use ba::barabasi_albert;
pub use datasets::{Dataset, DatasetSpec};
pub use er::erdos_renyi;
pub use grid::grid_mesh;
pub use rmat::{rmat, RmatConfig};

//! R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos,
//! SDM '04) — the generator the paper uses for its synthetic suite (§6.2,
//! Figure 9b, via X-Stream's bundled copy).

use crate::edgelist::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for one R-MAT instance.
///
/// Each edge is placed by `scale` recursive quadrant choices over the
/// adjacency matrix with probabilities `(a, b, c, d)`, `a + b + c + d = 1`.
/// Larger `a` concentrates edges in a shrinking corner, producing heavier
/// degree skew; `a = b = c = d = 0.25` degenerates to Erdős–Rényi.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Edges generated per vertex (average out-degree before dedup).
    pub edge_factor: f64,
    /// Quadrant probabilities.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed; identical configs produce identical graphs.
    pub seed: u64,
    /// Shuffle vertex identifiers so degree does not correlate with id.
    pub permute: bool,
    /// Drop duplicate edges and self-loops after generation.
    pub simplify: bool,
}

impl RmatConfig {
    /// Graph500-style defaults: `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
    pub fn graph500(scale: u32, edge_factor: f64, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            permute: true,
            simplify: true,
        }
    }

    /// Derived `d` probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Number of vertices this configuration will generate.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of edge placements attempted (pre-dedup).
    pub fn num_edge_attempts(&self) -> usize {
        (self.num_vertices() as f64 * self.edge_factor).round() as usize
    }
}

/// Generates an R-MAT edge list.
///
/// Noise is injected into the quadrant probabilities at each recursion level
/// (±10%, renormalized), as recommended by the R-MAT authors to avoid
/// staircase artifacts in the degree distribution.
pub fn rmat(cfg: &RmatConfig) -> EdgeList {
    assert!(cfg.scale >= 1 && cfg.scale <= 30, "scale out of range");
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.d() >= 0.0,
        "quadrant probabilities must be non-negative with a > 0"
    );
    let n = cfg.num_vertices();
    let attempts = cfg.num_edge_attempts();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut el = EdgeList::with_capacity(n, attempts);

    for _ in 0..attempts {
        let (src, dst) = place_edge(cfg, &mut rng);
        el.push(src, dst).expect("generator stays in range");
    }

    if cfg.permute {
        permute_vertices(&mut el, cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
    }
    if cfg.simplify {
        el.remove_self_loops();
        el.sort_and_dedup();
    }
    el
}

fn place_edge(cfg: &RmatConfig, rng: &mut StdRng) -> (VertexId, VertexId) {
    let mut row = 0u64;
    let mut col = 0u64;
    for level in 0..cfg.scale {
        // Per-level multiplicative noise in [0.9, 1.1], then renormalize.
        let na = cfg.a * (0.9 + 0.2 * rng.random::<f64>());
        let nb = cfg.b * (0.9 + 0.2 * rng.random::<f64>());
        let nc = cfg.c * (0.9 + 0.2 * rng.random::<f64>());
        let nd = cfg.d() * (0.9 + 0.2 * rng.random::<f64>());
        let total = na + nb + nc + nd;
        let r = rng.random::<f64>() * total;
        let half = 1u64 << (cfg.scale - 1 - level);
        if r < na {
            // top-left: nothing to add
        } else if r < na + nb {
            col += half;
        } else if r < na + nb + nc {
            row += half;
        } else {
            row += half;
            col += half;
        }
    }
    (row as VertexId, col as VertexId)
}

/// Applies a seeded random relabeling of vertex ids.
fn permute_vertices(el: &mut EdgeList, seed: u64) {
    let n = el.num_vertices();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let (nv, edges, weights) = std::mem::take(el).into_parts();
    let mut out = EdgeList::with_capacity(nv, edges.len());
    match weights {
        None => {
            for (s, d) in edges {
                out.push(perm[s as usize], perm[d as usize]).unwrap();
            }
        }
        Some(w) => {
            for ((s, d), wt) in edges.into_iter().zip(w) {
                out.push_weighted(perm[s as usize], perm[d as usize], wt)
                    .unwrap();
            }
        }
    }
    *el = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig::graph500(8, 4.0, 42);
        let a = rmat(&cfg);
        let b = rmat(&cfg);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(&RmatConfig::graph500(8, 4.0, 1));
        let b = rmat(&RmatConfig::graph500(8, 4.0, 2));
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn respects_scale_and_edge_factor() {
        let cfg = RmatConfig {
            simplify: false,
            permute: false,
            ..RmatConfig::graph500(10, 8.0, 7)
        };
        let el = rmat(&cfg);
        assert_eq!(el.num_vertices(), 1024);
        assert_eq!(el.num_edges(), 8192);
    }

    #[test]
    fn simplify_removes_loops_and_duplicates() {
        let el = rmat(&RmatConfig::graph500(8, 16.0, 3));
        assert!(el.edges().iter().all(|&(s, d)| s != d));
        let mut sorted = el.edges().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), el.num_edges());
    }

    #[test]
    fn skewed_config_produces_heavier_max_degree_than_uniform() {
        let skewed = rmat(&RmatConfig {
            a: 0.65,
            b: 0.15,
            c: 0.15,
            ..RmatConfig::graph500(12, 8.0, 11)
        });
        let uniform = rmat(&RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            ..RmatConfig::graph500(12, 8.0, 11)
        });
        let max_skew = *skewed.in_degrees().iter().max().unwrap();
        let max_unif = *uniform.in_degrees().iter().max().unwrap();
        assert!(
            max_skew > 2 * max_unif,
            "skewed max in-degree {max_skew} not > 2x uniform {max_unif}"
        );
    }

    #[test]
    fn permutation_decorrelates_degree_from_id() {
        // Without permutation, R-MAT's hub is vertex 0 (all-'a' path).
        let raw = rmat(&RmatConfig {
            permute: false,
            simplify: false,
            ..RmatConfig::graph500(10, 16.0, 5)
        });
        let deg = raw.out_degrees();
        let argmax = deg.iter().enumerate().max_by_key(|(_, &d)| d).unwrap().0;
        assert!(argmax < 16, "unpermuted hub should sit at a tiny id");
    }
}

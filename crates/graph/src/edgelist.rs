//! Unordered edge container used while constructing graphs.

use crate::types::{GraphError, VertexId};

/// A mutable list of directed edges, optionally weighted.
///
/// This is the interchange format between generators, file loaders, and the
/// [`Csr`](crate::Csr) builder. Edges are stored as `(src, dst)` pairs in
/// insertion order; weights, when present, are kept index-aligned with the
/// edge array through every transformation.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Option<Vec<f64>>,
}

impl EdgeList {
    /// Creates an empty list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Creates an empty list with capacity for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
            weights: None,
        }
    }

    /// Builds a list from a slice of `(src, dst)` pairs.
    ///
    /// `num_vertices` must cover every endpoint.
    pub fn from_pairs(
        num_vertices: usize,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        let mut el = EdgeList::with_capacity(num_vertices, pairs.len());
        for &(s, d) in pairs {
            el.push(s, d)?;
        }
        Ok(el)
    }

    /// Number of vertices in the vertex set (fixed at construction or grown
    /// via [`EdgeList::grow_vertices`]).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The raw edge array.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// The weight array, if this list is weighted.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// True when a weight is stored for every edge.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Enlarges the vertex set. Shrinking is not permitted.
    pub fn grow_vertices(&mut self, num_vertices: usize) {
        assert!(
            num_vertices >= self.num_vertices,
            "vertex set may only grow"
        );
        self.num_vertices = num_vertices;
    }

    /// Appends an unweighted edge.
    ///
    /// Fails if either endpoint is out of range, or if the list already
    /// carries weights (mixing weighted and unweighted edges would leave
    /// holes in the weight array).
    pub fn push(&mut self, src: VertexId, dst: VertexId) -> Result<(), GraphError> {
        if let Some(w) = &self.weights {
            return Err(GraphError::WeightLengthMismatch {
                edges: self.edges.len() + 1,
                weights: w.len(),
            });
        }
        self.check_endpoint(src)?;
        self.check_endpoint(dst)?;
        self.edges.push((src, dst));
        Ok(())
    }

    /// Appends a weighted edge. The first weighted push on an empty list
    /// switches the list to weighted mode; afterwards every push must be
    /// weighted.
    pub fn push_weighted(
        &mut self,
        src: VertexId,
        dst: VertexId,
        weight: f64,
    ) -> Result<(), GraphError> {
        self.check_endpoint(src)?;
        self.check_endpoint(dst)?;
        match &mut self.weights {
            Some(w) => {
                if w.len() != self.edges.len() {
                    return Err(GraphError::WeightLengthMismatch {
                        edges: self.edges.len(),
                        weights: w.len(),
                    });
                }
                w.push(weight);
            }
            None => {
                if !self.edges.is_empty() {
                    return Err(GraphError::WeightLengthMismatch {
                        edges: self.edges.len(),
                        weights: 0,
                    });
                }
                self.weights = Some(vec![weight]);
            }
        }
        self.edges.push((src, dst));
        Ok(())
    }

    fn check_endpoint(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.num_vertices {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: self.num_vertices as u64,
            })
        }
    }

    /// Removes self-loops (`src == dst`), keeping weights aligned.
    pub fn remove_self_loops(&mut self) {
        match &mut self.weights {
            Some(w) => {
                let mut keep = 0usize;
                for i in 0..self.edges.len() {
                    if self.edges[i].0 != self.edges[i].1 {
                        self.edges[keep] = self.edges[i];
                        w[keep] = w[i];
                        keep += 1;
                    }
                }
                self.edges.truncate(keep);
                w.truncate(keep);
            }
            None => self.edges.retain(|&(s, d)| s != d),
        }
    }

    /// Sorts edges by `(src, dst)` and removes duplicate pairs. For weighted
    /// lists the *first* weight (in the sorted order) of each duplicate group
    /// is kept.
    pub fn sort_and_dedup(&mut self) {
        match self.weights.take() {
            Some(w) => {
                let mut order: Vec<u32> = (0..self.edges.len() as u32).collect();
                order.sort_unstable_by_key(|&i| self.edges[i as usize]);
                let mut edges = Vec::with_capacity(self.edges.len());
                let mut weights = Vec::with_capacity(w.len());
                for &i in &order {
                    let e = self.edges[i as usize];
                    if edges.last() != Some(&e) {
                        edges.push(e);
                        weights.push(w[i as usize]);
                    }
                }
                self.edges = edges;
                self.weights = Some(weights);
            }
            None => {
                self.edges.sort_unstable();
                self.edges.dedup();
            }
        }
    }

    /// Adds the reverse of every edge, making the graph symmetric.
    /// Weighted lists mirror the weight onto the reverse edge.
    pub fn symmetrize(&mut self) {
        let m = self.edges.len();
        self.edges.reserve(m);
        if let Some(w) = &mut self.weights {
            w.reserve(m);
            for i in 0..m {
                let (s, d) = self.edges[i];
                let wt = w[i];
                self.edges.push((d, s));
                w.push(wt);
            }
        } else {
            for i in 0..m {
                let (s, d) = self.edges[i];
                self.edges.push((d, s));
            }
        }
    }

    /// Out-degree of every vertex, computed in one pass.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for &(s, _) in &self.edges {
            deg[s as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex, computed in one pass.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for &(_, d) in &self.edges {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Consumes the list, returning `(num_vertices, edges, weights)`.
    pub fn into_parts(self) -> (usize, Vec<(VertexId, VertexId)>, Option<Vec<f64>>) {
        (self.num_vertices, self.edges, self.weights)
    }

    /// Inverse of [`EdgeList::into_parts`]: assembles a list from already
    /// built arrays in one shot instead of pushing edge by edge. This is how
    /// the parallel loaders hand over their concatenated per-chunk vectors
    /// without a second O(|E|) re-push pass. Every endpoint and the weight
    /// alignment are validated.
    pub fn from_parts(
        num_vertices: usize,
        edges: Vec<(VertexId, VertexId)>,
        weights: Option<Vec<f64>>,
    ) -> Result<Self, GraphError> {
        if let Some(w) = &weights {
            if w.len() != edges.len() {
                return Err(GraphError::WeightLengthMismatch {
                    edges: edges.len(),
                    weights: w.len(),
                });
            }
        }
        if let Some(&(s, d)) = edges
            .iter()
            .find(|&&(s, d)| s as usize >= num_vertices || d as usize >= num_vertices)
        {
            return Err(GraphError::VertexOutOfRange {
                vertex: s.max(d) as u64,
                num_vertices: num_vertices as u64,
            });
        }
        Ok(EdgeList {
            num_vertices,
            edges,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        let mut el = EdgeList::new(5);
        for &(s, d) in &[(0, 1), (0, 2), (1, 2), (3, 0), (3, 3), (4, 1)] {
            el.push(s, d).unwrap();
        }
        el
    }

    #[test]
    fn push_and_count() {
        let el = sample();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.num_edges(), 6);
        assert!(!el.is_weighted());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut el = EdgeList::new(3);
        assert!(matches!(
            el.push(0, 3),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            el.push(7, 0),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert_eq!(el.num_edges(), 0);
    }

    #[test]
    fn self_loop_removal_unweighted() {
        let mut el = sample();
        el.remove_self_loops();
        assert_eq!(el.num_edges(), 5);
        assert!(el.edges().iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn self_loop_removal_weighted_keeps_alignment() {
        let mut el = EdgeList::new(4);
        el.push_weighted(0, 1, 1.0).unwrap();
        el.push_weighted(2, 2, 9.0).unwrap();
        el.push_weighted(1, 3, 3.0).unwrap();
        el.remove_self_loops();
        assert_eq!(el.edges(), &[(0, 1), (1, 3)]);
        assert_eq!(el.weights().unwrap(), &[1.0, 3.0]);
    }

    #[test]
    fn sort_and_dedup_unweighted() {
        let mut el = EdgeList::new(3);
        for &(s, d) in &[(2, 1), (0, 1), (2, 1), (0, 0), (0, 1)] {
            el.push(s, d).unwrap();
        }
        el.sort_and_dedup();
        assert_eq!(el.edges(), &[(0, 0), (0, 1), (2, 1)]);
    }

    #[test]
    fn sort_and_dedup_weighted_keeps_first() {
        let mut el = EdgeList::new(3);
        el.push_weighted(2, 1, 5.0).unwrap();
        el.push_weighted(0, 1, 1.0).unwrap();
        el.push_weighted(2, 1, 7.0).unwrap();
        el.sort_and_dedup();
        assert_eq!(el.edges(), &[(0, 1), (2, 1)]);
        // First weight in sorted (stable-by-index) order is kept for (2,1):
        // index order among duplicates is preserved by the sort key, so 5.0.
        assert_eq!(el.weights().unwrap(), &[1.0, 5.0]);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut el = sample();
        let m = el.num_edges();
        el.symmetrize();
        assert_eq!(el.num_edges(), 2 * m);
        // Every original edge's reverse must now exist.
        let set: std::collections::HashSet<_> = el.edges().iter().copied().collect();
        for &(s, d) in sample().edges() {
            assert!(set.contains(&(d, s)));
        }
    }

    #[test]
    fn symmetrize_mirrors_weights() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 2.5).unwrap();
        el.push_weighted(1, 2, 4.5).unwrap();
        el.symmetrize();
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (1, 0), (2, 1)]);
        assert_eq!(el.weights().unwrap(), &[2.5, 4.5, 2.5, 4.5]);
    }

    #[test]
    fn degrees() {
        let el = sample();
        assert_eq!(el.out_degrees(), vec![2, 1, 0, 2, 1]);
        assert_eq!(el.in_degrees(), vec![1, 2, 2, 1, 0]);
    }

    #[test]
    fn mixing_weighted_and_unweighted_fails() {
        let mut el = EdgeList::new(2);
        el.push(0, 1).unwrap();
        assert!(el.push_weighted(1, 0, 1.0).is_err());

        let mut el = EdgeList::new(2);
        el.push_weighted(0, 1, 1.0).unwrap();
        assert!(el.push(1, 0).is_err());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let el = sample();
        let (n, edges, weights) = el.clone().into_parts();
        let back = EdgeList::from_parts(n, edges, weights).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
        // Out-of-range endpoint reported as the larger offender.
        assert!(matches!(
            EdgeList::from_parts(2, vec![(0, 5)], None),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
        // Misaligned weights rejected.
        assert!(matches!(
            EdgeList::from_parts(2, vec![(0, 1)], Some(vec![1.0, 2.0])),
            Err(GraphError::WeightLengthMismatch { .. })
        ));
    }

    #[test]
    fn grow_vertices_allows_new_endpoints() {
        let mut el = EdgeList::new(2);
        assert!(el.push(0, 1).is_ok());
        assert!(el.push(0, 2).is_err());
        el.grow_vertices(3);
        assert!(el.push(0, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "vertex set may only grow")]
    fn shrinking_vertices_panics() {
        let mut el = EdgeList::new(3);
        el.grow_vertices(2);
    }
}

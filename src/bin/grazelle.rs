//! `grazelle` — command-line runner mirroring the original artifact's
//! interface (paper Appendix A.5.2).
//!
//! ```text
//! grazelle [options]
//!   -i <path>           input graph (.bin = binary format, .mtx = Matrix
//!                       Market, else text "src dst [weight]" lines)
//!   --synth <name>      use a Table-1 stand-in instead of a file:
//!                       cit-patents | dimacs-usa | livejournal |
//!                       twitter-2010 | friendster | uk-2007
//!   --scale <shift>     stand-in scale shift (default 0 = nominal)
//!   -a <app>            pr | cc | bfs | sssp | reach | kcore  (default: pr)
//!   -n <threads>        worker threads (artifact -n)
//!   -u <groups>         NUMA-stand-in groups (artifact -u takes node ids;
//!                       here a count)
//!   -N <iterations>     PageRank iterations (artifact -N, default 16)
//!   -s <granularity>    edge vectors per chunk (artifact -s; default 32n
//!                       chunks)
//!   -r <vertex>         root for bfs/sssp/reach (default 0)
//!   -o <path>           write per-vertex results (artifact -o)
//!   --pull-mode <m>     aware | traditional | nonatomic
//!   --simd <s>          auto | avx2 | scalar
//!   --engine <e>        hybrid | pull | push
//!   --sched <s>         central | stealing   (Edge-Pull chunk assignment)
//!   --no-sparse-frontier  keep frontiers dense (paper's original behavior)
//!   --symmetrize        add reverse edges (for cc on directed inputs)
//!   --build-threads <n> threads for the load -> CSR/CSC -> Vector-Sparse
//!                       build pipeline (default: the -n worker count);
//!                       output is bit-identical at any thread count
//!   --timing            print per-phase build timings (parse, csr, csc,
//!                       vsparse) with parse-bytes/s and edges/s
//!   --trace             record and print a per-iteration flight-recorder
//!                       table (engine choice, frontier density, phase
//!                       times, resilience events)
//!   -h, --help          this text
//! ```

use grazelle::core::build::prepare_profiled;
use grazelle::core::config::{EngineConfig, Granularity, PullMode};
use grazelle::core::engine::hybrid::{run_program_on_pool, EngineKind, ExecutionStats};
use grazelle::core::engine::PreparedGraph;
use grazelle::core::stats::BuildProfile;
use grazelle::graph::io;
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, pagerank, reach, sssp};
use grazelle_sched::pool::ThreadPool;
use grazelle_vsparse::simd::SimdLevel;
use std::io::Write;
use std::process::exit;

#[derive(Debug)]
struct Options {
    input: Option<String>,
    synth: Option<Dataset>,
    scale: i32,
    app: String,
    threads: usize,
    groups: usize,
    iterations: usize,
    granularity: Option<usize>,
    root: u32,
    output: Option<String>,
    pull_mode: PullMode,
    simd: Option<SimdLevel>,
    engine: Option<EngineKind>,
    sched: grazelle::core::config::SchedKind,
    sparse_frontier: bool,
    symmetrize: bool,
    build_threads: Option<usize>,
    timing: bool,
    trace: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: None,
            synth: None,
            scale: 0,
            app: "pr".into(),
            threads: std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(1),
            groups: 1,
            iterations: 16,
            granularity: None,
            root: 0,
            output: None,
            pull_mode: PullMode::SchedulerAware,
            simd: None,
            engine: None,
            sched: grazelle::core::config::SchedKind::Central,
            sparse_frontier: true,
            symmetrize: false,
            build_threads: None,
            timing: false,
            trace: false,
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    // The module doc is the usage text (minus the code-fence markers).
    let doc = include_str!("grazelle.rs");
    for line in doc.lines().skip(3) {
        let Some(stripped) = line.strip_prefix("//!") else {
            break;
        };
        let text = stripped.strip_prefix(' ').unwrap_or(stripped);
        if text.starts_with("```") {
            continue;
        }
        eprintln!("{text}");
    }
    exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_args() -> Options {
    let mut o = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let next = |it: &mut std::slice::Iter<String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-i" => o.input = Some(next(&mut it, "-i")),
            "--synth" => {
                let name = next(&mut it, "--synth");
                o.synth = Some(match name.as_str() {
                    "cit-patents" | "C" => Dataset::CitPatents,
                    "dimacs-usa" | "D" => Dataset::DimacsUsa,
                    "livejournal" | "L" => Dataset::LiveJournal,
                    "twitter-2010" | "T" => Dataset::Twitter2010,
                    "friendster" | "F" => Dataset::Friendster,
                    "uk-2007" | "U" => Dataset::Uk2007,
                    other => usage(&format!("unknown stand-in '{other}'")),
                });
            }
            "--scale" => {
                o.scale = next(&mut it, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale needs an integer"))
            }
            "-a" => o.app = next(&mut it, "-a"),
            "-n" => {
                o.threads = next(&mut it, "-n")
                    .parse()
                    .unwrap_or_else(|_| usage("-n needs a number"))
            }
            "-u" => {
                o.groups = next(&mut it, "-u")
                    .parse()
                    .unwrap_or_else(|_| usage("-u needs a number"))
            }
            "-N" => {
                o.iterations = next(&mut it, "-N")
                    .parse()
                    .unwrap_or_else(|_| usage("-N needs a number"))
            }
            "-s" => {
                o.granularity = Some(
                    next(&mut it, "-s")
                        .parse()
                        .unwrap_or_else(|_| usage("-s needs a number")),
                )
            }
            "-r" => {
                o.root = next(&mut it, "-r")
                    .parse()
                    .unwrap_or_else(|_| usage("-r needs a vertex id"))
            }
            "-o" => o.output = Some(next(&mut it, "-o")),
            "--pull-mode" => {
                o.pull_mode = match next(&mut it, "--pull-mode").as_str() {
                    "aware" | "scheduler-aware" => PullMode::SchedulerAware,
                    "traditional" => PullMode::Traditional,
                    "nonatomic" => PullMode::TraditionalNoAtomic,
                    other => usage(&format!("unknown pull mode '{other}'")),
                }
            }
            "--simd" => {
                o.simd = match next(&mut it, "--simd").as_str() {
                    "auto" => None,
                    "avx2" => Some(SimdLevel::Avx2),
                    "scalar" => Some(SimdLevel::Scalar),
                    other => usage(&format!("unknown simd level '{other}'")),
                }
            }
            "--engine" => {
                o.engine = match next(&mut it, "--engine").as_str() {
                    "hybrid" => None,
                    "pull" => Some(EngineKind::Pull),
                    "push" => Some(EngineKind::Push),
                    other => usage(&format!("unknown engine '{other}'")),
                }
            }
            "--sched" => {
                o.sched = match next(&mut it, "--sched").as_str() {
                    "central" => grazelle::core::config::SchedKind::Central,
                    "stealing" => grazelle::core::config::SchedKind::LocalityStealing,
                    other => usage(&format!("unknown scheduler '{other}'")),
                }
            }
            "--no-sparse-frontier" => o.sparse_frontier = false,
            "--symmetrize" => o.symmetrize = true,
            "--build-threads" => {
                o.build_threads = Some(
                    next(&mut it, "--build-threads")
                        .parse()
                        .unwrap_or_else(|_| usage("--build-threads needs a number")),
                )
            }
            "--timing" => o.timing = true,
            "--trace" => o.trace = true,
            "-h" | "--help" => usage(""),
            other => usage(&format!("unknown option '{other}'")),
        }
    }
    o
}

/// Loads the input and builds every structure on `build_pool`, timing each
/// pipeline phase. The parallel load/build paths are bit-identical to the
/// sequential ones, so `--build-threads` never changes results.
fn load_and_prepare(o: &Options, build_pool: &ThreadPool) -> (Graph, PreparedGraph, BuildProfile) {
    let mut el = match (&o.input, &o.synth) {
        (Some(path), None) => {
            let input_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let t = std::time::Instant::now();
            let el = if path.ends_with(".bin") {
                io::load_binary(path)
            } else if path.ends_with(".mtx") {
                io::load_matrix_market_parallel(path, build_pool)
            } else {
                io::load_text_parallel(path, build_pool)
            };
            let parse_ns = t.elapsed().as_nanos() as u64;
            let el = el.unwrap_or_else(|e| {
                eprintln!("error: cannot load '{path}': {e}");
                exit(1);
            });
            (el, parse_ns, input_bytes)
        }
        (None, Some(ds)) => {
            // Synthesized stand-ins never touch a parser; only the
            // Vector-Sparse encoding is re-run (and timed) here.
            let graph = maybe_symmetrize(ds.build_scaled(o.scale), o.symmetrize);
            let t = std::time::Instant::now();
            let prepared = PreparedGraph::new_on_pool(&graph, build_pool);
            let profile = BuildProfile {
                vsparse_ns: t.elapsed().as_nanos() as u64,
                edges: graph.num_edges() as u64,
                threads: build_pool.num_threads(),
                ..BuildProfile::default()
            };
            return (graph, prepared, profile);
        }
        (None, None) => usage("need -i <path> or --synth <name>"),
        (Some(_), Some(_)) => usage("-i and --synth are mutually exclusive"),
    };
    let (ref mut edges, parse_ns, input_bytes) = el;
    if o.symmetrize {
        edges.symmetrize();
        edges.sort_and_dedup();
    }
    let (graph, prepared, mut profile) = prepare_profiled(edges, build_pool).unwrap_or_else(|e| {
        eprintln!("error: invalid graph: {e}");
        exit(1);
    });
    profile.parse_ns = parse_ns;
    profile.input_bytes = input_bytes;
    (graph, prepared, profile)
}

/// The `--timing` build-phase table.
fn print_build_timing(p: &BuildProfile) {
    println!("\nBuild Timing ({} thread(s)):", p.threads);
    println!("  parse     {:>10.3} ms", p.parse_ns as f64 / 1e6);
    println!("  csr       {:>10.3} ms", p.csr_ns as f64 / 1e6);
    println!("  csc       {:>10.3} ms", p.csc_ns as f64 / 1e6);
    println!("  vsparse   {:>10.3} ms", p.vsparse_ns as f64 / 1e6);
    println!("  total     {:>10.3} ms", p.total_ns() as f64 / 1e6);
    if p.input_bytes > 0 {
        println!("  parse throughput:  {:.1} MB/s", p.bytes_per_sec() / 1e6);
    }
    println!(
        "  build throughput:  {:.2} Medges/s",
        p.edges_per_sec() / 1e6
    );
}

fn maybe_symmetrize(g: Graph, yes: bool) -> Graph {
    if !yes {
        return g;
    }
    let mut el =
        grazelle::graph::edgelist::EdgeList::with_capacity(g.num_vertices(), g.num_edges() * 2);
    for v in 0..g.num_vertices() as u32 {
        for &d in g.out_neighbors(v) {
            el.push(v, d).unwrap();
        }
    }
    el.symmetrize();
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap().with_name(g.name())
}

fn print_stats(stats: &ExecutionStats) {
    println!("Iterations Executed:      {}", stats.iterations);
    println!(
        "Engine Selection:         {} pull / {} push",
        stats.pull_iterations, stats.push_iterations
    );
    println!(
        "Running Time:             {:.3} ms",
        stats.wall.as_secs_f64() * 1e3
    );
    if stats.iterations > 0 {
        println!(
            "Per-Iteration Time:       {:.3} ms",
            stats.per_iteration().as_secs_f64() * 1e3
        );
    }
    let p = &stats.profile;
    println!(
        "Edge-Phase Updates:       {} atomic, {} nonatomic, {} direct, {} merged, {} pushed",
        p.atomic_updates, p.nonatomic_updates, p.direct_stores, p.merge_entries, p.push_updates
    );
    print_trace(stats);
}

/// The `--trace` flight-recorder table: one row per executed superstep.
fn print_trace(stats: &ExecutionStats) {
    if stats.records.is_empty() {
        return;
    }
    println!(
        "\n{:>5} {:>6} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10} {:>5} events",
        "iter",
        "engine",
        "density",
        "repr",
        "work_ms",
        "merge_ms",
        "write_ms",
        "idle_ms",
        "updates",
        "par"
    );
    for r in &stats.records {
        let mut events = String::new();
        if r.retries > 0 {
            events.push_str(&format!("retries={} ", r.retries));
        }
        if r.degraded {
            events.push_str("degraded ");
        }
        if r.rolled_back {
            events.push_str("rolled-back ");
        }
        if events.is_empty() {
            events.push('-');
        }
        println!(
            "{:>5} {:>6} {:>8.4} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>5} {}",
            r.iteration,
            match r.engine {
                EngineKind::Pull => "pull",
                EngineKind::Push => "push",
            },
            r.frontier_density,
            if r.sparse_repr { "sparse" } else { "dense" },
            r.work_ns as f64 / 1e6,
            r.merge_ns as f64 / 1e6,
            r.write_ns as f64 / 1e6,
            r.idle_ns as f64 / 1e6,
            r.updates,
            r.edge_parallelism,
            events.trim_end()
        );
    }
}

fn write_output<T: std::fmt::Display>(path: &str, values: impl Iterator<Item = T>) {
    let f = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("error: cannot write '{path}': {e}");
        exit(1);
    });
    let mut w = std::io::BufWriter::new(f);
    for (v, x) in values.enumerate() {
        writeln!(w, "{v} {x}").unwrap();
    }
}

fn main() {
    let o = parse_args();
    let build_pool = ThreadPool::single_group(o.build_threads.unwrap_or(o.threads).max(1));
    let (graph, prepared, build_profile) = load_and_prepare(&o, &build_pool);
    drop(build_pool);
    println!(
        "Graph:                    {} ({} vertices, {} edges{})",
        if graph.name().is_empty() {
            "<file>"
        } else {
            graph.name()
        },
        graph.num_vertices(),
        graph.num_edges(),
        if graph.is_weighted() {
            ", weighted"
        } else {
            ""
        }
    );

    let mut cfg = EngineConfig::new()
        .with_threads(o.threads)
        .with_groups(o.groups)
        .with_pull_mode(o.pull_mode)
        .with_force_engine(o.engine)
        .with_sched_kind(o.sched)
        .with_sparse_frontier(o.sparse_frontier)
        .with_trace(o.trace);
    if let Some(simd) = o.simd {
        cfg = cfg.with_simd(simd);
    }
    if let Some(g) = o.granularity {
        cfg = cfg.with_granularity(Granularity::VectorsPerChunk(g));
    }
    println!(
        "Engine:                   {} threads, {} group(s), {:?}, {:?}",
        cfg.threads, cfg.groups, cfg.pull_mode, cfg.simd
    );
    if o.timing {
        print_build_timing(&build_profile);
    }

    let pool = ThreadPool::new(cfg.threads, cfg.groups);
    let n = graph.num_vertices();
    if matches!(o.app.as_str(), "bfs" | "sssp" | "reach") && o.root as usize >= n {
        eprintln!("error: root {} out of range ({} vertices)", o.root, n);
        exit(1);
    }

    match o.app.as_str() {
        "pr" | "pagerank" => {
            cfg.max_iterations = o.iterations;
            let prog = pagerank::PageRank::new(&graph, pagerank::DAMPING);
            let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
            print_stats(&stats);
            println!("PageRank Sum:             {:.9}", prog.rank_sum());
            if let Some(path) = &o.output {
                write_output(path, prog.ranks().into_iter());
            }
        }
        "cc" => {
            let prog = cc::ConnectedComponents::new(n);
            let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
            print_stats(&stats);
            let labels = prog.labels();
            let mut uniq = labels.clone();
            uniq.sort_unstable();
            uniq.dedup();
            println!("Components Found:         {}", uniq.len());
            if let Some(path) = &o.output {
                write_output(path, labels.into_iter());
            }
        }
        "bfs" => {
            let prog = bfs::Bfs::new(n, o.root);
            let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
            print_stats(&stats);
            println!("Vertices Visited:         {}", prog.visited_count());
            if let Some(path) = &o.output {
                write_output(
                    path,
                    prog.parents()
                        .into_iter()
                        .map(|p| p.map_or(-1i64, |v| v as i64)),
                );
            }
        }
        "sssp" => {
            if !graph.is_weighted() {
                eprintln!("error: sssp needs a weighted input (text lines 'src dst weight')");
                exit(1);
            }
            let prog = sssp::Sssp::new(n, o.root);
            let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
            print_stats(&stats);
            let d = prog.distances();
            println!(
                "Vertices Reached:         {}",
                d.iter().filter(|x| x.is_some()).count()
            );
            if let Some(path) = &o.output {
                write_output(
                    path,
                    d.into_iter()
                        .map(|x| x.map_or("inf".to_string(), |d| format!("{d}"))),
                );
            }
        }
        "kcore" => {
            let (coreness, stats) =
                grazelle_apps::kcore::run_prepared(&prepared, &graph, &cfg, &pool);
            print_stats(&stats);
            println!(
                "Degeneracy (max core):    {}",
                coreness.iter().max().unwrap_or(&0)
            );
            if let Some(path) = &o.output {
                write_output(path, coreness.into_iter());
            }
        }
        "reach" => {
            let prog = reach::Reachability::new(n, o.root);
            let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
            print_stats(&stats);
            let r = prog.reached();
            println!(
                "Vertices Reached:         {}",
                r.iter().filter(|&&x| x).count()
            );
            if let Some(path) = &o.output {
                write_output(path, r.into_iter().map(|x| x as u8));
            }
        }
        other => usage(&format!("unknown application '{other}'")),
    }
}

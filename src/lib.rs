//! # Grazelle (Rust reproduction)
//!
//! A from-scratch Rust reproduction of *Making Pull-Based Graph Processing
//! Performant* (Grossman, Litz, Kozyrakis — PPoPP 2018). This facade crate
//! re-exports the whole workspace:
//!
//! * [`graph`] — graph substrate (CSR/CSC, generators, I/O).
//! * [`vsparse`] — the Vector-Sparse format and SIMD kernels (paper §4).
//! * [`sched`] — thread pool, barriers, and both the traditional and the
//!   scheduler-aware parallel-loop interfaces (paper §3).
//! * [`core`] — the hybrid engine: Edge-Pull, Edge-Push, Vertex phases,
//!   frontier, and the GAS-style programming model (paper §5).
//! * [`apps`] — PageRank, Connected Components, BFS, SSSP.
//! * [`baselines`] — Ligra-like, Polymer-like, GraphMat-like and
//!   X-Stream-like engine patterns used by the paper's comparison figures.
//!
//! ## Quickstart
//!
//! ```
//! use grazelle::prelude::*;
//!
//! // A tiny synthetic scale-free graph.
//! let graph = Dataset::LiveJournal.build_scaled(-6);
//! // Run 10 PageRank iterations on the hybrid engine.
//! let config = EngineConfig::default();
//! let ranks = grazelle::apps::pagerank::run(&graph, &config, 10);
//! assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! ```
//!
//! ## Updating the graph
//!
//! Batched inserts/deletes go through a versioned delta overlay; results
//! are maintained incrementally instead of recomputed (DESIGN.md §15):
//!
//! ```
//! use grazelle::prelude::*;
//! use grazelle::apps::IncrementalBfs;
//! use grazelle::sched::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(2, 1);
//! let mut vg = VersionedGraph::from_graph(Dataset::LiveJournal.build_scaled(-6), &pool);
//! let cfg = EngineConfig::default();
//! let mut bfs = IncrementalBfs::cold(&vg.view(), 0, &cfg, &pool);
//!
//! let mut batch = UpdateBatch::new();
//! batch.insert(7, 93).insert(93, 7);
//! let report = vg.apply_batch(&batch, &pool).unwrap();
//! assert!(!report.full_recompute); // inserts never invalidate results
//! bfs.update(&vg.view(), &report.record.inserted, &cfg, &pool);
//! ```

pub use grazelle_apps as apps;
pub use grazelle_baselines as baselines;
pub use grazelle_core as core;
pub use grazelle_graph as graph;
pub use grazelle_sched as sched;
pub use grazelle_vsparse as vsparse;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use grazelle_core::config::EngineConfig;
    pub use grazelle_core::frontier::Frontier;
    pub use grazelle_core::incremental::VersionedGraph;
    pub use grazelle_graph::delta::UpdateBatch;
    pub use grazelle_graph::gen::datasets::Dataset;
    pub use grazelle_graph::prelude::*;
    pub use grazelle_vsparse::{ActiveVectorList, VectorSparse, Vsd, Vss};
}

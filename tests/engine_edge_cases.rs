//! Edge-case regression suite: degenerate and boundary-shaped inputs that
//! historically break engines — the empty graph, a single vertex, graphs
//! with no edges at all, self-loops, and vertex counts straddling the 4-
//! and 8-lane vector widths. Every driver (pull, push, hybrid, resilient)
//! and the 8-lane single-phase engine must handle each shape and agree
//! with the sequential references.

use grazelle::core::config::{EngineConfig, ResilienceConfig, ScatterMode};
use grazelle::core::engine::hybrid::{run_program_on_pool, EngineKind};
use grazelle::core::engine::pull::{edge_pull, EdgeSchedulers};
use grazelle::core::engine::pull_wide::edge_pull8;
use grazelle::core::engine::PreparedGraph;
use grazelle::core::spmv::{program_kernel, SemiringKernel};
use grazelle::core::stats::Profiler;
use grazelle::core::{
    run_resilient_on_pool, GraphProgram, PullMode, ResilienceContext, RunOutcome,
};
use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, labelprop, triangle, Bfs, ConnectedComponents, LabelProp};
use grazelle_sched::pool::ThreadPool;
use grazelle_sched::slots::SlotBuffer;
use grazelle_vsparse::simd::{Kernels, Kernels8};
use proptest::prelude::*;

fn graph_from(n: usize, pairs: &[(u32, u32)]) -> Graph {
    let mut el = EdgeList::from_pairs(n, pairs).unwrap();
    el.symmetrize();
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

/// BFS and CC fixed points hold ∞/identity at unreachable vertices, which
/// the divergence guard would misread on these mostly-disconnected shapes.
fn no_guard() -> ResilienceConfig {
    ResilienceConfig {
        divergence_guard: false,
        ..ResilienceConfig::new()
    }
}

/// Runs CC, label propagation, and triangle counting (always) and BFS
/// (when the graph has a vertex for the root) through every driver and
/// checks the references.
fn check_every_engine(g: &Graph, label: &str) {
    let n = g.num_vertices();
    let pg = PreparedGraph::new(g);
    let want_cc = cc::reference_undirected(g);
    let want_lp = labelprop::reference(g);
    let want_tc = triangle::reference(g);
    let configs = [
        ("pull", Some(EngineKind::Pull), ScatterMode::Auto),
        ("push", Some(EngineKind::Push), ScatterMode::Auto),
        // The bucketed atomic-free scatter (DESIGN.md §17) must survive the
        // same degenerate shapes: empty frontiers after the first superstep
        // on isolated vertices, single-hub stars, lane-straddling counts.
        ("push-spa", Some(EngineKind::Push), ScatterMode::Spa),
        ("hybrid", None, ScatterMode::Auto),
    ];
    for threads in [1usize, 2] {
        let pool = ThreadPool::single_group(threads);
        for (cname, kind, smode) in configs {
            let cfg = EngineConfig::new()
                .with_threads(threads)
                .with_force_engine(kind)
                .with_scatter_mode(smode);
            let prog = ConnectedComponents::new(n);
            run_program_on_pool(&pg, &prog, &cfg, &pool);
            assert_eq!(prog.labels(), want_cc, "{label}/{cname}x{threads}: CC");
            let prog = LabelProp::new(g);
            run_program_on_pool(&pg, &prog, &cfg, &pool);
            assert_eq!(prog.labels(), want_lp, "{label}/{cname}x{threads}: LP");
            assert_eq!(
                triangle::counts_prepared(g, &pg, &cfg, &pool),
                want_tc,
                "{label}/{cname}x{threads}: TC"
            );
            if n > 0 {
                let root = 0u32;
                let prog = Bfs::new(n, root);
                run_program_on_pool(&pg, &prog, &cfg, &pool);
                assert_eq!(
                    bfs::validate_parents(g, root, &prog.parents()),
                    bfs::reference_depths(g, root),
                    "{label}/{cname}x{threads}: BFS"
                );
            }
        }
        // The resilient driver must come back clean on the same shapes.
        let cfg = EngineConfig::new()
            .with_threads(threads)
            .with_resilience(no_guard());
        let prog = ConnectedComponents::new(n);
        let run = run_resilient_on_pool(&pg, &prog, &cfg, &ResilienceContext::new(), &pool)
            .unwrap_or_else(|e| panic!("{label}/resilient-x{threads}: {e:?}"));
        assert_eq!(
            run.outcome,
            RunOutcome::Clean,
            "{label}/resilient-x{threads}"
        );
        assert_eq!(prog.labels(), want_cc, "{label}/resilient-x{threads}: CC");
        let prog = LabelProp::new(g);
        run_resilient_on_pool(&pg, &prog, &cfg, &ResilienceContext::new(), &pool)
            .unwrap_or_else(|e| panic!("{label}/resilient-lp-x{threads}: {e:?}"));
        assert_eq!(prog.labels(), want_lp, "{label}/resilient-x{threads}: LP");
        let got = triangle::counts_resilient(g, &pg, &cfg, &ResilienceContext::new(), &pool)
            .unwrap_or_else(|e| panic!("{label}/resilient-tc-x{threads}: {e:?}"));
        assert_eq!(got, want_tc, "{label}/resilient-x{threads}: TC");
    }
    check_wide_engine(g, label);
}

/// One Edge phase through the 8-lane engine vs the 4-lane engine: the
/// width ablation's agreement must also hold on degenerate shapes.
fn check_wide_engine(g: &Graph, label: &str) {
    let n = g.num_vertices();
    let prog4 = ConnectedComponents::new(n);
    let prog8 = ConnectedComponents::new(n);
    let pool = ThreadPool::single_group(2);
    let frontier = Frontier::all(n);
    // The driver's vertex phase resets accumulators to the aggregation
    // identity before every Edge phase; single-phase calls must do the
    // same or chunk-boundary merges see stale values.
    for prog in [&prog4, &prog8] {
        for v in 0..n {
            prog.accumulators().set_f64(v, prog.op().identity());
        }
    }

    let vsd = VectorSparse::<4>::from_csr(g.in_csr());
    let kern4 = program_kernel(&prog4, &vsd, Kernels::auto());
    let scheds = EdgeSchedulers::single(vsd.num_vectors(), 4);
    let mut merge = SlotBuffer::new(scheds.total_chunks());
    let prof = Profiler::new();
    edge_pull(
        &vsd,
        &kern4,
        &frontier,
        &pool,
        &scheds,
        &mut merge,
        PullMode::SchedulerAware,
        &prof,
    );

    let vsd8 = VectorSparse::<8>::from_csr(g.in_csr());
    let kern8 = SemiringKernel::for_structure8(&prog8, &vsd8, Kernels8::auto());
    let prof = Profiler::new();
    edge_pull8(&vsd8, &kern8, &frontier, None, &pool, 4, &prof);

    for v in 0..n {
        assert_eq!(
            prog4.accumulators().get_f64(v),
            prog8.accumulators().get_f64(v),
            "{label}: 4-lane vs 8-lane accumulator at v{v}"
        );
    }
}

#[test]
fn empty_graph_is_rejected_at_construction() {
    // The zero-vertex graph is rejected up front with a typed error —
    // engines never see it. Pin that contract so a silent acceptance
    // (and the downstream div-by-zero frontier densities) can't sneak in.
    use grazelle::graph::types::GraphError;
    let el = EdgeList::new(0);
    assert!(matches!(
        Graph::from_edgelist(&el),
        Err(GraphError::EmptyGraph)
    ));
}

#[test]
fn single_vertex_no_edges() {
    check_every_engine(&graph_from(1, &[]), "single-vertex");
}

#[test]
fn single_vertex_self_loop() {
    check_every_engine(&graph_from(1, &[(0, 0)]), "single-vertex-loop");
}

#[test]
fn all_vertices_isolated() {
    check_every_engine(&graph_from(37, &[]), "all-isolated");
}

#[test]
fn self_loops_everywhere() {
    // Every vertex carries a self-loop; a sparse chain connects a few.
    let mut pairs: Vec<(u32, u32)> = (0..19u32).map(|v| (v, v)).collect();
    pairs.extend([(0, 1), (1, 2), (5, 6)]);
    check_every_engine(&graph_from(19, &pairs), "self-loops");
}

#[test]
fn clique_straddling_lane_widths() {
    // Complete graphs on both sides of the 4- and 8-lane boundaries: the
    // densest possible intersections, every vertex in C(n−1, 2) triangles.
    for n in [3usize, 5, 9, 17] {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|a| ((a + 1)..n as u32).map(move |b| (a, b)))
            .collect();
        let g = graph_from(n, &pairs);
        let want = (n * (n - 1) * (n - 2) / 6) as u64;
        assert_eq!(triangle::reference(&g).total, want, "K{n} reference");
        check_every_engine(&g, &format!("clique-n={n}"));
    }
}

#[test]
fn stars_have_no_triangles() {
    // A star is triangle-free no matter how many leaves; the hub's huge
    // adjacency still intersects every leaf's singleton list to nothing.
    for leaves in [1usize, 7, 31, 64] {
        let pairs: Vec<(u32, u32)> = (1..=leaves as u32).map(|v| (0, v)).collect();
        let g = graph_from(leaves + 1, &pairs);
        assert_eq!(triangle::reference(&g).total, 0, "star-{leaves}");
        check_every_engine(&g, &format!("star-{leaves}"));
    }
}

#[test]
fn complete_bipartite_graphs_have_no_triangles() {
    // K_{a,b} is triangle-free (odd cycles need an odd part); the dense
    // cross-adjacency exercises long intersections that must all miss.
    for (a, b) in [(2usize, 3usize), (4, 4), (3, 9)] {
        let pairs: Vec<(u32, u32)> = (0..a as u32)
            .flat_map(|u| (a as u32..(a + b) as u32).map(move |v| (u, v)))
            .collect();
        let g = graph_from(a + b, &pairs);
        assert_eq!(triangle::reference(&g).total, 0, "K{a},{b}");
        check_every_engine(&g, &format!("bipartite-{a}x{b}"));
    }
}

#[test]
fn vertex_counts_straddle_lane_widths() {
    // Neither a multiple of the 4-lane nor the 8-lane width, on both
    // sides of each boundary, including a high-degree hub that spans
    // multiple vectors of either width.
    for n in [2usize, 3, 5, 7, 9, 15, 17, 63, 65] {
        let pairs: Vec<(u32, u32)> = (1..n as u32).flat_map(|v| [(v, 0), (v, v - 1)]).collect();
        check_every_engine(&graph_from(n, &pairs), &format!("n={n}"));
    }
}

#[test]
fn spa_scatter_spans_multiple_destination_chunks() {
    // Every other shape in this suite fits inside one 2048-vertex SPA
    // destination chunk, so the radix partition and the chunk-parallel
    // merge are degenerate there. A 5000-vertex chain with a hub spans
    // three chunks and forces cross-chunk bucketing; the SPA arm must
    // still match the synchronized scatter's fixed point exactly.
    let n = 5000usize;
    let mut pairs: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    pairs.extend((1..n as u32).step_by(7).map(|v| (0, v)));
    let g = graph_from(n, &pairs);
    let pg = PreparedGraph::new(&g);
    let want_cc = cc::reference_undirected(&g);
    let want_bfs = bfs::reference_depths(&g, 0);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::single_group(threads);
        let cfg = EngineConfig::new()
            .with_threads(threads)
            .with_force_engine(Some(EngineKind::Push))
            .with_scatter_mode(ScatterMode::Spa);
        let prog = ConnectedComponents::new(n);
        run_program_on_pool(&pg, &prog, &cfg, &pool);
        assert_eq!(prog.labels(), want_cc, "multi-chunk-spa-x{threads}: CC");
        let prog = Bfs::new(n, 0);
        run_program_on_pool(&pg, &prog, &cfg, &pool);
        assert_eq!(
            bfs::validate_parents(&g, 0, &prog.parents()),
            want_bfs,
            "multi-chunk-spa-x{threads}: BFS"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: random graphs dense with self-loops and isolated tails
    /// never break engine agreement at any vertex count near the lane
    /// boundaries.
    #[test]
    fn prop_loops_and_ragged_sizes(
        n in 1usize..33,
        pairs in proptest::collection::vec((0u32..33, 0u32..33), 0..80),
        loops in proptest::collection::vec(0u32..33, 0..16),
    ) {
        let mut edges: Vec<(u32, u32)> = pairs
            .into_iter()
            .filter(|&(s, d)| (s as usize) < n && (d as usize) < n)
            .collect();
        edges.extend(
            loops
                .into_iter()
                .filter(|&v| (v as usize) < n)
                .map(|v| (v, v)),
        );
        check_every_engine(&graph_from(n, &edges), &format!("random-n={n}"));
    }
}

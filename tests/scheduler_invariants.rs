//! Invariants of the scheduler-aware interface — the paper's §3 claims,
//! checked mechanically rather than by timing:
//!
//! 1. zero synchronized updates in scheduler-aware mode;
//! 2. shared-memory write traffic bounded by |V| + #chunks (vs per-vector
//!    traffic for the traditional interface);
//! 3. results identical across any chunk granularity and thread count;
//! 4. the merge buffer is exercised (chunk-boundary vertices) whenever
//!    chunks split vertices.

use grazelle::core::config::{EngineConfig, Granularity, PullMode};
use grazelle::core::engine::hybrid::run_program_on_pool;
use grazelle::core::engine::PreparedGraph;
use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle_apps::pagerank::{self, PageRank};
use grazelle_sched::pool::ThreadPool;
use proptest::prelude::*;

fn standin() -> (Graph, PreparedGraph) {
    let g = Dataset::Uk2007.build_scaled(-6); // most skewed: hubs span chunks
    let pg = PreparedGraph::new(&g);
    (g, pg)
}

#[test]
fn scheduler_aware_never_synchronizes() {
    let (g, pg) = standin();
    let pool = ThreadPool::single_group(4);
    for gran in [10usize, 100, 1000] {
        let cfg = EngineConfig::new()
            .with_threads(4)
            .with_granularity(Granularity::VectorsPerChunk(gran))
            .with_max_iterations(3);
        let prog = PageRank::new(&g, pagerank::DAMPING);
        let stats = run_program_on_pool(&pg, &prog, &cfg, &pool);
        assert_eq!(stats.profile.atomic_updates, 0, "granularity {gran}");
        assert_eq!(stats.profile.nonatomic_updates, 0, "granularity {gran}");
    }
}

#[test]
fn write_traffic_is_bounded_by_vertices_plus_chunks() {
    let (g, pg) = standin();
    let pool = ThreadPool::single_group(4);
    let iters = 3u64;
    let gran = 50usize;
    let chunks = pg.vsd.num_vectors().div_ceil(gran);
    let cfg = EngineConfig::new()
        .with_threads(4)
        .with_granularity(Granularity::VectorsPerChunk(gran))
        .with_max_iterations(iters as usize);
    let prog = PageRank::new(&g, pagerank::DAMPING);
    let stats = run_program_on_pool(&pg, &prog, &cfg, &pool);
    let per_iter_writes = (stats.profile.direct_stores + stats.profile.merge_entries) / iters;
    assert!(
        per_iter_writes <= (g.num_vertices() + chunks) as u64,
        "writes/iter {per_iter_writes} exceeds |V|+chunks {}",
        g.num_vertices() + chunks
    );
    // And the traditional interface pays per *vector*:
    let cfg_t = cfg.with_pull_mode(PullMode::Traditional);
    let prog_t = PageRank::new(&g, pagerank::DAMPING);
    let stats_t = run_program_on_pool(&pg, &prog_t, &cfg_t, &pool);
    let trad_per_iter = stats_t.profile.atomic_updates / iters;
    assert!(
        trad_per_iter > per_iter_writes,
        "traditional {trad_per_iter} should exceed scheduler-aware {per_iter_writes}"
    );
}

#[test]
fn merge_buffer_handles_hub_spanning_chunks() {
    // One hub with in-degree 4096 and chunk size 8 vectors: the hub's 1024
    // vectors span ~128 chunks, all but one contributing via merge entries.
    let n = 4200;
    let mut el = EdgeList::new(n);
    for s in 1..=4096u32 {
        el.push(s, 0).unwrap();
    }
    el.push(0, 4199).unwrap(); // give the hub an out-edge too
    let g = Graph::from_edgelist(&el).unwrap();
    let pg = PreparedGraph::new(&g);
    let pool = ThreadPool::single_group(4);
    let cfg = EngineConfig::new()
        .with_threads(4)
        .with_granularity(Granularity::VectorsPerChunk(8))
        .with_max_iterations(1);
    let prog = PageRank::new(&g, pagerank::DAMPING);
    let stats = run_program_on_pool(&pg, &prog, &cfg, &pool);
    assert!(
        stats.profile.merge_entries >= 100,
        "expected many merge entries for the spanning hub, got {}",
        stats.profile.merge_entries
    );
    // The hub's rank must equal the exact sum of all 4096 contributions.
    let want = pagerank::reference(&g, pagerank::DAMPING, 1);
    let got = prog.ranks();
    assert!(
        (got[0] - want[0]).abs() < 1e-12,
        "hub rank {} vs reference {}",
        got[0],
        want[0]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// PageRank output is invariant (to floating-point re-association,
    /// which chunk grouping legitimately changes) across granularities and
    /// thread counts in scheduler-aware mode.
    #[test]
    fn prop_results_invariant_under_chunking(
        gran in 1usize..64,
        threads in 1usize..5,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..250),
    ) {
        let mut el = EdgeList::from_pairs(40, &edges).unwrap();
        el.sort_and_dedup();
        let g = Graph::from_edgelist(&el).unwrap();
        let pg = PreparedGraph::new(&g);

        let run = |gran: usize, threads: usize| {
            let pool = ThreadPool::single_group(threads);
            let cfg = EngineConfig::new()
                .with_threads(threads)
                .with_granularity(Granularity::VectorsPerChunk(gran))
                .with_max_iterations(4);
            let prog = PageRank::new(&g, pagerank::DAMPING);
            run_program_on_pool(&pg, &prog, &cfg, &pool);
            prog.ranks()
        };
        let baseline = run(1, 1);
        let variant = run(gran, threads);
        for (v, (a, b)) in baseline.iter().zip(&variant).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-12,
                "vertex {}: {} vs {} (gran {}, threads {})", v, a, b, gran, threads
            );
        }
    }
}

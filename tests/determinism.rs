//! Determinism and reproducibility guarantees across the workspace.

use grazelle::core::config::EngineConfig;
use grazelle::graph::gen::rmat::{rmat, RmatConfig};
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, pagerank};

#[test]
fn dataset_standins_are_reproducible() {
    for ds in Dataset::all() {
        let a = ds.build_scaled(-6);
        let b = ds.build_scaled(-6);
        assert_eq!(a.num_vertices(), b.num_vertices(), "{ds:?}");
        assert_eq!(a.out_csr().index(), b.out_csr().index(), "{ds:?}");
        assert_eq!(a.out_csr().edges(), b.out_csr().edges(), "{ds:?}");
    }
}

#[test]
fn vector_sparse_layout_is_deterministic() {
    let g = Dataset::CitPatents.build_scaled(-6);
    let a = Vsd::from_csr(g.in_csr());
    let b = Vsd::from_csr(g.in_csr());
    assert_eq!(a.num_vectors(), b.num_vectors());
    assert_eq!(a.vectors(), b.vectors());
    assert_eq!(a.index(), b.index());
}

#[test]
fn repeated_runs_are_identical() {
    // Same config, same graph, run twice: all three applications must
    // return exactly the same values (dynamic chunk *assignment* varies
    // across runs, but per-destination aggregation grouping does not).
    let base = Dataset::LiveJournal.build_scaled(-6);
    let mut el = grazelle::graph::edgelist::EdgeList::with_capacity(
        base.num_vertices(),
        base.num_edges() * 2,
    );
    for v in 0..base.num_vertices() as u32 {
        for &d in base.out_neighbors(v) {
            el.push(v, d).unwrap();
        }
    }
    el.symmetrize();
    el.sort_and_dedup();
    let g = Graph::from_edgelist(&el).unwrap();
    let cfg = EngineConfig::new().with_threads(4);

    let pr1 = pagerank::run(&g, &cfg, 6);
    let pr2 = pagerank::run(&g, &cfg, 6);
    assert_eq!(pr1, pr2, "PageRank not run-to-run deterministic");

    let cc1 = cc::run(&g, &cfg);
    let cc2 = cc::run(&g, &cfg);
    assert_eq!(cc1, cc2);

    let b1 = bfs::run(&g, &cfg, 3);
    let b2 = bfs::run(&g, &cfg, 3);
    assert_eq!(b1, b2);
}

#[test]
fn rmat_permutation_does_not_change_structure_statistics() {
    let base = RmatConfig {
        permute: false,
        ..RmatConfig::graph500(10, 8.0, 9)
    };
    let permuted = RmatConfig {
        permute: true,
        ..base
    };
    let a = rmat(&base);
    let b = rmat(&permuted);
    assert_eq!(a.num_edges(), b.num_edges());
    let mut da = a.in_degrees();
    let mut db = b.in_degrees();
    da.sort_unstable();
    db.sort_unstable();
    assert_eq!(da, db, "permutation must preserve the degree multiset");
}

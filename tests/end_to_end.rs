//! End-to-end integration: generation → serialization → preparation →
//! every application on the Grazelle engine, checked against references.

use grazelle::core::config::{EngineConfig, PullMode};
use grazelle::core::engine::hybrid::run_program_on_pool;
use grazelle::core::engine::PreparedGraph;
use grazelle::graph::edgelist::EdgeList;
use grazelle::graph::io;
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, pagerank, sssp};
use grazelle_sched::pool::ThreadPool;

fn symmetric_standin(ds: Dataset) -> Graph {
    let base = ds.build_scaled(-5);
    let mut el = EdgeList::with_capacity(base.num_vertices(), base.num_edges() * 2);
    for v in 0..base.num_vertices() as u32 {
        for &d in base.out_neighbors(v) {
            el.push(v, d).unwrap();
        }
    }
    el.symmetrize();
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

#[test]
fn pipeline_generate_serialize_reload_run() {
    // Generate.
    let g = Dataset::CitPatents.build_scaled(-5);
    // Serialize to the binary format and reload.
    let mut el = EdgeList::with_capacity(g.num_vertices(), g.num_edges());
    for v in 0..g.num_vertices() as u32 {
        for &d in g.out_neighbors(v) {
            el.push(v, d).unwrap();
        }
    }
    let bytes = io::encode_binary(&el);
    let reloaded = Graph::from_edgelist(&io::decode_binary(&bytes).unwrap()).unwrap();
    assert_eq!(reloaded.num_edges(), g.num_edges());
    // PageRank on original and reloaded graphs must agree exactly.
    let cfg = EngineConfig::new().with_threads(2);
    let a = pagerank::run(&g, &cfg, 5);
    let b = pagerank::run(&reloaded, &cfg, 5);
    assert_eq!(a, b);
}

#[test]
fn all_applications_on_all_datasets() {
    let cfg = EngineConfig::new().with_threads(3);
    for ds in Dataset::all() {
        let g = symmetric_standin(ds);
        let pg = PreparedGraph::new(&g);
        let pool = ThreadPool::new(cfg.threads, cfg.groups);

        // PageRank: rank sum 1, matches reference.
        let (ranks, _) = pagerank::run_prepared(&pg, &g, &cfg, &pool, 5);
        let want = pagerank::reference(&g, pagerank::DAMPING, 5);
        for (i, (a, b)) in ranks.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "{ds:?} PR v{i}");
        }
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{ds:?} sum");

        // CC: matches union-find.
        let (labels, _) = cc::run_prepared(&pg, &cfg, &pool, false);
        assert_eq!(labels, cc::reference_undirected(&g), "{ds:?} CC");

        // BFS: depths match reference.
        let (parents, _) = bfs::run_prepared(&pg, &cfg, &pool, 0);
        let depths = bfs::validate_parents(&g, 0, &parents);
        assert_eq!(depths, bfs::reference_depths(&g, 0), "{ds:?} BFS");
    }
}

#[test]
fn weighted_pipeline_sssp() {
    // A weighted ring with shortcuts: text-format roundtrip, then SSSP.
    let mut el = EdgeList::new(50);
    for v in 0..50u32 {
        el.push_weighted(v, (v + 1) % 50, 1.0).unwrap();
    }
    el.push_weighted(0, 25, 3.5).unwrap();
    let mut buf = Vec::new();
    io::write_text_edgelist(&el, &mut buf).unwrap();
    let reloaded = io::read_text_edgelist(&buf[..]).unwrap();
    let g = Graph::from_edgelist(&reloaded).unwrap();
    let cfg = EngineConfig::new().with_threads(2);
    let got = sssp::run(&g, &cfg, 0);
    let want = sssp::reference(&g, 0);
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(&want) {
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => panic!("{a:?} vs {b:?}"),
        }
    }
    // Distance to 25 goes through the shortcut.
    assert_eq!(got[25], Some(3.5));
}

#[test]
fn frontier_driven_program_traces_engine_switches() {
    // On a path graph BFS shrinks the frontier to one vertex per level:
    // after the first levels the driver must use the push engine.
    const N: usize = 4000;
    let mut el = EdgeList::new(N);
    for v in 0..(N - 1) as u32 {
        el.push(v, v + 1).unwrap();
        el.push(v + 1, v).unwrap();
    }
    let g = Graph::from_edgelist(&el).unwrap();
    let pg = PreparedGraph::new(&g);
    let pool = ThreadPool::single_group(2);
    // A path needs one iteration per level — raise the safety cap.
    let cfg = EngineConfig::new()
        .with_threads(2)
        .with_max_iterations(2 * N);
    let prog = grazelle_apps::Bfs::new(N, 0);
    let stats = run_program_on_pool(&pg, &prog, &cfg, &pool);
    assert!(stats.push_iterations > stats.pull_iterations);
    assert_eq!(prog.visited_count(), N);
}

#[test]
fn pull_modes_agree_on_every_app_single_threaded() {
    let g = symmetric_standin(Dataset::LiveJournal);
    let modes = [
        PullMode::SchedulerAware,
        PullMode::Traditional,
        PullMode::TraditionalNoAtomic, // 1 thread: race-free
    ];
    let results: Vec<_> = modes
        .iter()
        .map(|&m| {
            let cfg = EngineConfig::new().with_threads(1).with_pull_mode(m);
            let pr = pagerank::run(&g, &cfg, 4);
            let cc = cc::run(&g, &cfg);
            let bfs = bfs::run(&g, &cfg, 0);
            (pr, cc, bfs)
        })
        .collect();
    for (m, r) in modes.iter().zip(&results).skip(1) {
        // PageRank: the interfaces group floating-point sums differently
        // (chunk partials vs per-vector accumulation), so compare within
        // rounding tolerance; CC labels and BFS parents are integer-valued
        // minima and must match exactly.
        for (v, (a, b)) in results[0].0.iter().zip(&r.0).enumerate() {
            assert!((a - b).abs() < 1e-12, "{m:?} PR v{v}: {a} vs {b}");
        }
        assert_eq!(results[0].1, r.1, "{m:?} CC");
        assert_eq!(results[0].2, r.2, "{m:?} BFS");
    }
}

//! Relabeling invariance: vertex reordering is a pure locality transform,
//! so every application's result must be the original result pushed
//! through the permutation.

use grazelle::core::config::EngineConfig;
use grazelle::graph::reorder::{apply_permutation, bfs_order, by_degree, invert};
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, pagerank};
use proptest::prelude::*;

fn cfg() -> EngineConfig {
    EngineConfig::new().with_threads(2)
}

#[test]
fn pagerank_ranks_permute_under_degree_ordering() {
    let g = Dataset::LiveJournal.build_scaled(-6);
    let (rg, perm) = by_degree(&g);
    let base = pagerank::run(&g, &cfg(), 8);
    let reordered = pagerank::run(&rg, &cfg(), 8);
    for v in 0..g.num_vertices() {
        let a = base[v];
        let b = reordered[perm[v] as usize];
        assert!((a - b).abs() < 1e-12, "v{v}: {a} vs {b}");
    }
}

#[test]
fn cc_labels_permute_consistently() {
    // Labels are component minima, which relabeling renames — compare the
    // *partition* induced, not the label values.
    let base_graph = {
        let mut el = grazelle::graph::edgelist::EdgeList::new(64);
        for v in 0..32u32 {
            el.push(v, (v + 1) % 32).unwrap();
            el.push((v + 1) % 32, v).unwrap();
        }
        for v in 40..50u32 {
            el.push(v, v + 1).unwrap();
            el.push(v + 1, v).unwrap();
        }
        Graph::from_edgelist(&el).unwrap()
    };
    let (rg, perm) = bfs_order(&base_graph, 0);
    let base = cc::run(&base_graph, &cfg());
    let reordered = cc::run(&rg, &cfg());
    // Same-component in one labeling <=> same-component in the other.
    for u in 0..64usize {
        for v in (u + 1)..64usize {
            let same_base = base[u] == base[v];
            let same_re = reordered[perm[u] as usize] == reordered[perm[v] as usize];
            assert_eq!(same_base, same_re, "pair ({u},{v})");
        }
    }
}

#[test]
fn bfs_depths_permute_under_reordering() {
    let g = Dataset::CitPatents.build_scaled(-6);
    let (rg, perm) = by_degree(&g);
    let root = 3u32;
    let base_depths = {
        let parents = bfs::run(&g, &cfg(), root);
        bfs::validate_parents(&g, root, &parents)
    };
    let re_depths = {
        let parents = bfs::run(&rg, &cfg(), perm[root as usize]);
        bfs::validate_parents(&rg, perm[root as usize], &parents)
    };
    for v in 0..g.num_vertices() {
        assert_eq!(base_depths[v], re_depths[perm[v] as usize], "v{v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Round trip: applying a permutation then its inverse restores the
    /// exact graph.
    #[test]
    fn prop_permutation_roundtrip(
        edges in proptest::collection::vec((0u32..24, 0u32..24), 0..150),
        seed in 0u64..1000,
    ) {
        let mut el = grazelle::graph::edgelist::EdgeList::from_pairs(24, &edges).unwrap();
        el.sort_and_dedup();
        let g = Graph::from_edgelist(&el).unwrap();
        // A seeded shuffle as the permutation.
        let mut perm: Vec<u32> = (0..24).collect();
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        for i in (1..24usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let there = apply_permutation(&g, &perm);
        let back = apply_permutation(&there, &invert(&perm));
        prop_assert_eq!(back.out_csr().index(), g.out_csr().index());
        prop_assert_eq!(back.out_csr().edges(), g.out_csr().edges());
    }
}

//! End-to-end runs under the shadow write-tracker (`invariant-checks`).
//!
//! `cargo test --features invariant-checks` compiles the tracker into the
//! engine: `run_program` audits the §3 exactly-once-write contract after
//! every scheduler-aware Edge phase and panics on any violation, so simply
//! running the applications here *is* the assertion. The property test
//! additionally drives the pull engine directly over random CSR graphs at
//! 1/2/8 threads and verifies the tracker was engaged, not bypassed.

#![cfg(feature = "invariant-checks")]

use grazelle::core::config::{EngineConfig, Granularity, PullMode};
use grazelle::core::engine::pull::{edge_pull, EdgeSchedulers, MergeEntry};
use grazelle::core::engine::PreparedGraph;
use grazelle::core::frontier::Frontier;
use grazelle::core::program::{AggOp, GraphProgram};
use grazelle::core::properties::PropertyArray;
use grazelle::core::spmv::program_kernel;
use grazelle::core::stats::Profiler;
use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle_apps::{cc, pagerank};
use grazelle_sched::pool::ThreadPool;
use grazelle_sched::slots::SlotBuffer;
use grazelle_vsparse::build::VectorSparse;
use grazelle_vsparse::simd::Kernels;
use proptest::prelude::*;

/// PageRank end-to-end under the tracker: zero violations at every thread
/// count, and the ranks still match the sequential reference.
#[test]
fn pagerank_runs_clean_under_tracker() {
    let g = Dataset::Twitter2010.build_scaled(-5);
    let want = pagerank::reference(&g, pagerank::DAMPING, 5);
    for threads in [1usize, 2, 8] {
        let cfg = EngineConfig::new().with_threads(threads);
        let ranks = pagerank::run(&g, &cfg, 5);
        for (v, (a, b)) in ranks.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "threads {threads} vertex {v}");
        }
    }
}

/// Connected Components end-to-end under the tracker, including the
/// write-intense variant that stresses the Vertex phase.
#[test]
fn cc_runs_clean_under_tracker() {
    let g = {
        let base = Dataset::Uk2007.build_scaled(-5);
        let mut el = EdgeList::with_capacity(base.num_vertices(), base.num_edges() * 2);
        for v in 0..base.num_vertices() as u32 {
            for &d in base.out_neighbors(v) {
                el.push(v, d).expect("in-range vertex id");
            }
        }
        el.symmetrize();
        el.sort_and_dedup();
        Graph::from_edgelist(&el).expect("valid edge list")
    };
    let want = cc::reference_undirected(&g);
    for threads in [1usize, 2, 8] {
        let cfg = EngineConfig::new().with_threads(threads);
        let labels = cc::run(&g, &cfg);
        assert_eq!(labels, want, "threads {threads}");
    }
}

struct SumProg {
    vals: PropertyArray,
    acc: PropertyArray,
    n: usize,
}
impl GraphProgram for SumProg {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn op(&self) -> AggOp {
        AggOp::Sum
    }
    fn edge_values(&self) -> &PropertyArray {
        &self.vals
    }
    fn accumulators(&self) -> &PropertyArray {
        &self.acc
    }
    fn apply(&self, _v: u32) -> bool {
        false
    }
    fn uses_frontier(&self) -> bool {
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tracker stays silent on the real `aware` scheduler for random
    /// CSR graphs across 1/2/8 threads and arbitrary chunking — and it
    /// demonstrably audited the phase (`phases_checked` advanced).
    #[test]
    fn prop_tracker_silent_on_real_scheduler(
        edges in proptest::collection::vec((0u32..48, 0u32..48), 1..300),
        gran in 1usize..40,
    ) {
        let mut el = EdgeList::from_pairs(48, &edges).expect("ids in range");
        el.sort_and_dedup();
        let g = Graph::from_edgelist(&el).expect("valid edge list");
        let vsd = VectorSparse::<4>::from_csr(g.in_csr());
        let n = g.num_vertices();
        for threads in [1usize, 2, 8] {
            let prog = SumProg {
                vals: PropertyArray::filled_f64(n, 1.0),
                acc: PropertyArray::filled_f64(n, 0.0),
                n,
            };
            let pool = ThreadPool::single_group(threads);
            let chunks = vsd.num_vectors().div_ceil(gran).max(1);
            let scheds = EdgeSchedulers::single(vsd.num_vectors(), chunks);
            let mut merge: SlotBuffer<MergeEntry> =
                SlotBuffer::new(scheds.total_chunks());
            let prof = Profiler::with_tracker();
            let kern = program_kernel(&prog, &vsd, Kernels::auto());
            // Panics internally on any §3 contract violation.
            edge_pull(
                &vsd,
                &kern,
                &Frontier::all(n),
                &pool,
                &scheds,
                &mut merge,
                PullMode::SchedulerAware,
                &prof,
            );
            let t = prof.tracker.as_ref().expect("tracker installed");
            prop_assert_eq!(t.phases_checked(), 1);
            // In-degree sums must still be exact.
            for v in 0..n as u32 {
                let want = g.in_neighbors(v).len() as f64;
                prop_assert!(
                    (prog.acc.get_f64(v as usize) - want).abs() < 1e-9,
                    "threads {} vertex {}", threads, v
                );
            }
        }
    }

    /// The full hybrid driver (engine switching, frontiers, granularities)
    /// also runs clean: `run_program` audits every scheduler-aware phase.
    #[test]
    fn prop_hybrid_driver_silent_on_random_graphs(
        edges in proptest::collection::vec((0u32..32, 0u32..32), 1..200),
        gran in 1usize..32,
        threads in 1usize..5,
    ) {
        let mut el = EdgeList::from_pairs(32, &edges).expect("ids in range");
        el.sort_and_dedup();
        let g = Graph::from_edgelist(&el).expect("valid edge list");
        let pg = PreparedGraph::new(&g);
        let cfg = EngineConfig::new()
            .with_threads(threads)
            .with_granularity(Granularity::VectorsPerChunk(gran))
            .with_max_iterations(4);
        let prog = pagerank::PageRank::new(&g, pagerank::DAMPING);
        let pool = ThreadPool::single_group(threads);
        grazelle::core::engine::hybrid::run_program_on_pool(&pg, &prog, &cfg, &pool);
    }
}

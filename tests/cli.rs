//! Integration tests for the `grazelle` command-line runner, exercised as
//! a real subprocess (the artifact's workflow, Appendix A.5.2).

use std::process::Command;

fn grazelle() -> Command {
    Command::new(env!("CARGO_BIN_EXE_grazelle"))
}

fn run_ok(args: &[&str]) -> String {
    let out = grazelle().args(args).output().expect("spawn grazelle");
    assert!(
        out.status.success(),
        "grazelle {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn pagerank_on_standin_reports_sum_one() {
    let out = run_ok(&[
        "--synth",
        "cit-patents",
        "--scale",
        "-6",
        "-a",
        "pr",
        "-N",
        "8",
    ]);
    assert!(out.contains("Running Time:"), "{out}");
    let sum_line = out
        .lines()
        .find(|l| l.starts_with("PageRank Sum:"))
        .expect("sum line");
    let sum: f64 = sum_line.split_whitespace().last().unwrap().parse().unwrap();
    assert!((sum - 1.0).abs() < 1e-6, "{sum_line}");
}

#[test]
fn cc_counts_components_on_symmetrized_standin() {
    let out = run_ok(&[
        "--synth",
        "livejournal",
        "--scale",
        "-6",
        "--symmetrize",
        "-a",
        "cc",
    ]);
    let comp_line = out
        .lines()
        .find(|l| l.starts_with("Components Found:"))
        .expect("components line");
    let comps: usize = comp_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(comps >= 1);
}

#[test]
fn bfs_from_file_writes_parent_output() {
    let dir = std::env::temp_dir();
    let graph_path = dir.join("grazelle_cli_test.el");
    let out_path = dir.join("grazelle_cli_test.parents");
    std::fs::write(&graph_path, "0 1\n1 2\n2 3\n0 4\n").unwrap();
    let out = run_ok(&[
        "-i",
        graph_path.to_str().unwrap(),
        "-a",
        "bfs",
        "-r",
        "0",
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.contains("Vertices Visited:         5"), "{out}");
    let parents = std::fs::read_to_string(&out_path).unwrap();
    let lines: Vec<&str> = parents.lines().collect();
    assert_eq!(lines.len(), 5);
    assert_eq!(lines[0], "0 0"); // root's parent is itself
    assert_eq!(lines[1], "1 0");
    assert_eq!(lines[4], "4 0");
    std::fs::remove_file(&graph_path).ok();
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn sssp_on_weighted_text_input() {
    let dir = std::env::temp_dir();
    let graph_path = dir.join("grazelle_cli_weighted.el");
    std::fs::write(&graph_path, "0 1 5.0\n0 2 1.0\n2 1 1.5\n").unwrap();
    let out = run_ok(&["-i", graph_path.to_str().unwrap(), "-a", "sssp", "-r", "0"]);
    assert!(out.contains("Vertices Reached:         3"), "{out}");
    std::fs::remove_file(&graph_path).ok();
}

#[test]
fn kcore_reports_degeneracy() {
    let dir = std::env::temp_dir();
    let path = dir.join("grazelle_cli_kcore.el");
    // 4-clique (coreness 3), symmetrized by the flag.
    std::fs::write(&path, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").unwrap();
    let out = run_ok(&["-i", path.to_str().unwrap(), "--symmetrize", "-a", "kcore"]);
    assert!(out.contains("Degeneracy (max core):    3"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn matrix_market_input_loads() {
    let dir = std::env::temp_dir();
    let path = dir.join("grazelle_cli_test.mtx");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n",
    )
    .unwrap();
    let out = run_ok(&["-i", path.to_str().unwrap(), "-a", "cc"]);
    assert!(out.contains("Components Found:         1"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn engine_and_mode_flags_are_accepted() {
    for extra in [
        ["--engine", "pull"],
        ["--engine", "push"],
        ["--pull-mode", "traditional"],
        ["--simd", "scalar"],
        ["--sched", "stealing"],
        ["--sched", "central"],
    ] {
        let mut args = vec![
            "--synth",
            "dimacs-usa",
            "--scale",
            "-6",
            "-a",
            "pr",
            "-N",
            "2",
        ];
        args.extend(extra);
        run_ok(&args);
    }
}

#[test]
fn sparse_frontier_flag_is_accepted_and_preserves_bfs() {
    let dir = std::env::temp_dir();
    let graph_path = dir.join("grazelle_cli_sparse.el");
    std::fs::write(&graph_path, "0 1\n1 2\n2 3\n3 4\n").unwrap();
    let a = run_ok(&["-i", graph_path.to_str().unwrap(), "-a", "bfs", "-r", "0"]);
    let b = run_ok(&[
        "-i",
        graph_path.to_str().unwrap(),
        "-a",
        "bfs",
        "-r",
        "0",
        "--no-sparse-frontier",
    ]);
    let visited = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("Vertices Visited:"))
            .unwrap()
            .to_string()
    };
    assert_eq!(visited(&a), visited(&b));
    std::fs::remove_file(&graph_path).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["-a", "unknown-app", "--synth", "dimacs-usa"],
        vec!["--synth", "not-a-graph"],
        vec!["-i", "/nonexistent/file.el", "-a", "pr"],
        vec![], // no input at all
    ] {
        let out = grazelle().args(&args).output().unwrap();
        assert!(!out.status.success(), "expected failure for {args:?}");
    }
}

#[test]
fn sssp_rejects_unweighted_input() {
    let out = grazelle()
        .args(["--synth", "dimacs-usa", "--scale", "-6", "-a", "sssp"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("weighted"));
}

//! Weighted applications (SSSP, weighted PageRank) across every baseline
//! engine pattern — weights flow through Compressed-Sparse in the
//! baselines and through the appended weight vectors in Grazelle, and all
//! paths must agree with the sequential references.

use grazelle::core::config::EngineConfig;
use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle_apps::{sssp, wpagerank, Sssp, WeightedPageRank};
use grazelle_baselines::{GraphMatEngine, LigraConfig, LigraEngine, PolymerEngine, XStreamEngine};
use grazelle_sched::pool::ThreadPool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn weighted_graph(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    for _ in 0..m {
        let s = rng.random_range(0..n) as u32;
        let d = rng.random_range(0..n) as u32;
        let w = (rng.random_range(1..64) as f64) / 8.0;
        el.push_weighted(s, d, w).unwrap();
    }
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

fn assert_dists_eq(name: &str, got: &[Option<f64>], want: &[Option<f64>]) {
    assert_eq!(got.len(), want.len());
    for (v, (a, b)) in got.iter().zip(want).enumerate() {
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{name} v{v}: {x} vs {y}"),
            (None, None) => {}
            _ => panic!("{name} v{v}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn sssp_agrees_across_all_baseline_engines() {
    let g = weighted_graph(250, 1800, 5);
    let want = sssp::reference(&g, 0);
    let pool = ThreadPool::single_group(2);
    const MAX: usize = 10_000;

    let ligra = LigraEngine::new(&g);
    for (name, cfg) in [
        ("ligra", LigraConfig::standard()),
        ("ligra-dense", LigraConfig::dense()),
        ("ligra-push", LigraConfig::push_p()),
    ] {
        let prog = Sssp::new(g.num_vertices(), 0);
        ligra.run(&g, &prog, &pool, &cfg, MAX);
        assert_dists_eq(name, &prog.distances(), &want);
    }

    let prog = Sssp::new(g.num_vertices(), 0);
    PolymerEngine::new(&g, 1).run(&g, &prog, &pool, MAX);
    assert_dists_eq("polymer", &prog.distances(), &want);

    let prog = Sssp::new(g.num_vertices(), 0);
    GraphMatEngine::new().run(&g, &prog, &pool, MAX);
    assert_dists_eq("graphmat", &prog.distances(), &want);

    let prog = Sssp::new(g.num_vertices(), 0);
    XStreamEngine::with_partition_size(&g, 64).run(&prog, &pool, MAX);
    assert_dists_eq("xstream", &prog.distances(), &want);
}

#[test]
fn weighted_pagerank_agrees_across_all_baseline_engines() {
    let g = weighted_graph(200, 1200, 17);
    let want = wpagerank::reference(&g, grazelle_apps::pagerank::DAMPING, 6);
    let pool = ThreadPool::single_group(2);

    let check = |name: &str, ranks: Vec<f64>| {
        for (v, (a, b)) in ranks.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "{name} v{v}: {a} vs {b}");
        }
    };

    let ligra = LigraEngine::new(&g);
    for (name, cfg) in [
        ("ligra", LigraConfig::standard()),
        ("ligra-push", LigraConfig::push_p()),
    ] {
        let prog = WeightedPageRank::new(&g, grazelle_apps::pagerank::DAMPING);
        ligra.run(&g, &prog, &pool, &cfg, 6);
        check(name, prog.ranks());
    }

    let prog = WeightedPageRank::new(&g, grazelle_apps::pagerank::DAMPING);
    PolymerEngine::new(&g, 1).run(&g, &prog, &pool, 6);
    check("polymer", prog.ranks());

    let prog = WeightedPageRank::new(&g, grazelle_apps::pagerank::DAMPING);
    GraphMatEngine::new().run(&g, &prog, &pool, 6);
    check("graphmat", prog.ranks());

    let prog = WeightedPageRank::new(&g, grazelle_apps::pagerank::DAMPING);
    XStreamEngine::with_partition_size(&g, 50).run(&prog, &pool, 6);
    check("xstream", prog.ranks());

    // And Grazelle itself, for the full circle.
    let grazelle_ranks = wpagerank::run(&g, &EngineConfig::new().with_threads(2), 6);
    check("grazelle", grazelle_ranks);
}

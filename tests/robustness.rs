//! Failure injection and hostile-input robustness.

use grazelle::core::config::EngineConfig;
use grazelle::core::engine::hybrid::run_program_on_pool;
use grazelle::core::engine::PreparedGraph;
use grazelle::core::frontier::Frontier;
use grazelle::core::program::{AggOp, GraphProgram};
use grazelle::core::properties::PropertyArray;
use grazelle::graph::edgelist::EdgeList;
use grazelle::graph::io;
use grazelle::prelude::*;
use grazelle_sched::pool::ThreadPool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A program whose `apply` panics at one vertex after a few iterations.
struct PanicBomb {
    n: usize,
    vals: PropertyArray,
    acc: PropertyArray,
    applies: AtomicUsize,
    fuse: usize,
}

impl GraphProgram for PanicBomb {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn op(&self) -> AggOp {
        AggOp::Sum
    }
    fn edge_values(&self) -> &PropertyArray {
        &self.vals
    }
    fn accumulators(&self) -> &PropertyArray {
        &self.acc
    }
    fn apply(&self, _v: u32) -> bool {
        if self.applies.fetch_add(1, Ordering::Relaxed) == self.fuse {
            panic!("injected application fault");
        }
        false
    }
    fn uses_frontier(&self) -> bool {
        false
    }
}

#[test]
fn application_panic_propagates_and_pool_survives() {
    let el = EdgeList::from_pairs(32, &[(0, 1), (1, 2), (2, 0)]).unwrap();
    let g = Graph::from_edgelist(&el).unwrap();
    let pg = PreparedGraph::new(&g);
    let pool = ThreadPool::single_group(2);
    let cfg = EngineConfig::new().with_threads(2).with_max_iterations(10);

    let bomb = PanicBomb {
        n: 32,
        vals: PropertyArray::new(32),
        acc: PropertyArray::new(32),
        applies: AtomicUsize::new(0),
        fuse: 40, // second iteration's vertex phase
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_program_on_pool(&pg, &bomb, &cfg, &pool);
    }));
    assert!(result.is_err(), "fault must surface, not hang");

    // The pool must remain usable for a healthy program afterwards.
    let healthy = PanicBomb {
        n: 32,
        vals: PropertyArray::new(32),
        acc: PropertyArray::new(32),
        applies: AtomicUsize::new(0),
        fuse: usize::MAX,
    };
    let stats = run_program_on_pool(&pg, &healthy, &cfg, &pool);
    assert_eq!(stats.iterations, 10);
}

#[test]
fn mismatched_program_and_graph_rejected() {
    let el = EdgeList::from_pairs(8, &[(0, 1)]).unwrap();
    let g = Graph::from_edgelist(&el).unwrap();
    let pg = PreparedGraph::new(&g);
    let wrong = PanicBomb {
        n: 4, // graph has 8 vertices
        vals: PropertyArray::new(4),
        acc: PropertyArray::new(4),
        applies: AtomicUsize::new(0),
        fuse: usize::MAX,
    };
    let cfg = EngineConfig::new().with_threads(1);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        grazelle::core::engine::hybrid::run_program(&pg, &wrong, &cfg);
    }));
    assert!(result.is_err());
}

#[test]
fn sssp_root_out_of_range_rejected() {
    let result = std::panic::catch_unwind(|| grazelle_apps::Sssp::new(3, 3));
    assert!(result.is_err());
    let result = std::panic::catch_unwind(|| grazelle_apps::Bfs::new(3, 7));
    assert!(result.is_err());
}

#[test]
fn empty_and_degenerate_graphs_run_everywhere() {
    // Edgeless graph: every application degenerates gracefully.
    let el = EdgeList::new(5);
    let g = Graph::from_edgelist(&el).unwrap();
    let cfg = EngineConfig::new().with_threads(2);
    let ranks = grazelle_apps::pagerank::run(&g, &cfg, 3);
    assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    let labels = grazelle_apps::cc::run(&g, &cfg);
    assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    let parents = grazelle_apps::bfs::run(&g, &cfg, 2);
    assert_eq!(parents.iter().filter(|p| p.is_some()).count(), 1);

    // Single-vertex graph with a self-loop.
    let mut el = EdgeList::new(1);
    el.push(0, 0).unwrap();
    let g = Graph::from_edgelist(&el).unwrap();
    let ranks = grazelle_apps::pagerank::run(&g, &cfg, 5);
    assert!((ranks[0] - 1.0).abs() < 1e-12);
}

#[test]
fn frontier_all_and_dense_full_are_interchangeable() {
    let base = Dataset::CitPatents.build_scaled(-7);
    let pg = PreparedGraph::new(&base);
    let n = base.num_vertices();
    // A CC-like program with explicit Dense(full) initial frontier must
    // match the All frontier exactly.
    struct MinProg {
        labels: PropertyArray,
        acc: PropertyArray,
        n: usize,
        dense_init: bool,
    }
    impl GraphProgram for MinProg {
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn op(&self) -> AggOp {
            AggOp::Min
        }
        fn edge_values(&self) -> &PropertyArray {
            &self.labels
        }
        fn accumulators(&self) -> &PropertyArray {
            &self.acc
        }
        fn apply(&self, v: u32) -> bool {
            let old = self.labels.get_f64(v as usize);
            let agg = self.acc.get_f64(v as usize);
            if agg < old {
                self.labels.set_f64(v as usize, agg);
                true
            } else {
                false
            }
        }
        fn uses_frontier(&self) -> bool {
            true
        }
        fn initial_frontier(&self) -> Frontier {
            if self.dense_init {
                let all: Vec<u32> = (0..self.n as u32).collect();
                Frontier::from_vertices(self.n, &all)
            } else {
                Frontier::all(self.n)
            }
        }
    }
    let run = |dense_init: bool| {
        let prog = MinProg {
            labels: PropertyArray::new(n),
            acc: PropertyArray::new(n),
            n,
            dense_init,
        };
        for v in 0..n {
            prog.labels.set_f64(v, v as f64);
        }
        let cfg = EngineConfig::new().with_threads(2);
        run_program_on_pool(&pg, &prog, &cfg, &ThreadPool::single_group(2));
        prog.labels.to_vec_f64()
    };
    assert_eq!(run(true), run(false));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary graph decoding never panics on arbitrary bytes — it returns
    /// a structured error instead.
    #[test]
    fn prop_binary_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = io::decode_binary(&bytes);
    }

    /// Ditto for text and Matrix Market parsing on arbitrary ASCII.
    #[test]
    fn prop_text_parsers_never_panic(s in "[ -~\n]{0,256}") {
        let _ = io::read_text_edgelist(s.as_bytes());
        let _ = io::read_matrix_market(s.as_bytes());
    }

    /// Decoding a valid encoding prefixed/suffixed with junk fails cleanly
    /// or roundtrips — never UB, never panic.
    #[test]
    fn prop_binary_decode_tolerates_truncation(
        edges in proptest::collection::vec((0u32..16, 0u32..16), 0..20),
        cut in 0usize..200,
    ) {
        let el = EdgeList::from_pairs(16, &edges).unwrap();
        let bytes = io::encode_binary(&el);
        let cut = cut.min(bytes.len());
        let _ = io::decode_binary(&bytes[..cut]);
    }
}

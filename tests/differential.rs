//! Differential fixed-point suite (DESIGN.md §8): every execution
//! configuration — push vs pull (scalar and SIMD), hybrid selection, the
//! resilient driver, both chunk schedulers, sparse and dense frontier
//! representations, and the frontier-aware compacted pull — must agree on
//! the fixed point of every application, on random graphs drawn from three
//! structurally different families (R-MAT skew, partial mesh, Erdős–Rényi).
//!
//! PageRank is compared within 1e-9 (summation order legitimately differs
//! between engines); CC, BFS, and SSSP fixed points are compared exactly —
//! their Min aggregation is order-insensitive, so any difference is a bug.
//!
//! Replay: the vendored proptest has no shrinking. A failure prints its
//! case number; rerunning the test deterministically regenerates the same
//! inputs for that case (`proptest::case_rng(test_name, case)`), which is
//! this suite's substitute for a shrunken minimal example.

use grazelle::core::config::{EngineConfig, ResilienceConfig, ScatterMode, SchedKind};
use grazelle::core::engine::hybrid::{run_program_on_pool, EngineKind};
use grazelle::core::engine::PreparedGraph;
use grazelle::core::{run_resilient_on_pool, ResilienceContext, RunOutcome, VersionedGraph};
use grazelle::graph::delta::UpdateBatch;
use grazelle::graph::edgelist::EdgeList;
use grazelle::graph::gen::{erdos_renyi, grid_mesh, rmat, RmatConfig};
use grazelle::prelude::*;
use grazelle_apps::{
    bfs, cc, kcore, labelprop, pagerank, sssp, triangle, Bfs, ConnectedComponents, IncrementalBfs,
    IncrementalCc, IncrementalPageRank, KCore, LabelProp, PageRank, Sssp,
};
use grazelle_sched::pool::ThreadPool;
use grazelle_vsparse::simd::SimdLevel;
use proptest::prelude::*;
use std::sync::Arc;

const PR_ITERS: usize = 20;

/// One random graph per (family, seed): symmetrized so CC's undirected
/// reference applies and BFS/SSSP reach non-trivial fractions.
fn family_graph(family: u8, seed: u64) -> Graph {
    let mut el = match family % 3 {
        0 => rmat(&RmatConfig::graph500(6, 4.0, seed)),
        1 => grid_mesh(9, 9, 0.85, seed),
        _ => erdos_renyi(96, 320, seed, true),
    };
    el.symmetrize();
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

/// The same structure with deterministic per-direction weights. Weights
/// are exact binary fractions so min-plus sums carry no rounding and the
/// SSSP comparison can be exact.
fn weighted_copy(g: &Graph) -> Graph {
    let mut el = EdgeList::new(g.num_vertices());
    for v in 0..g.num_vertices() as u32 {
        for &d in g.out_neighbors(v) {
            let w = ((v as u64 * 31 + d as u64) % 16 + 1) as f64 / 4.0;
            el.push_weighted(v, d, w).unwrap();
        }
    }
    Graph::from_edgelist(&el).unwrap()
}

/// The configuration matrix: engine pin × thread count, plus one arm each
/// for scalar SIMD, the locality-stealing scheduler, the dense-only
/// frontier representation, and disabled frontier-aware pull. The
/// resilient driver is flagged so the runner routes through it.
fn arms() -> Vec<(String, EngineConfig, bool)> {
    let mut v = Vec::new();
    for threads in [1usize, 2, 8] {
        for kind in [Some(EngineKind::Pull), Some(EngineKind::Push), None] {
            let name = match kind {
                Some(k) => format!("{k:?}x{threads}"),
                None => format!("hybrid-x{threads}"),
            };
            v.push((
                name,
                EngineConfig::new()
                    .with_threads(threads)
                    .with_force_engine(kind),
                false,
            ));
        }
    }
    // SPA bit-identity arms (DESIGN.md §17): the atomic-free bucketed
    // scatter must land on the same fixed point as every other engine,
    // at every thread count, for all seven kernels.
    for threads in [1usize, 2, 8] {
        v.push((
            format!("push-spa-x{threads}"),
            EngineConfig::new()
                .with_threads(threads)
                .with_force_engine(Some(EngineKind::Push))
                .with_scatter_mode(ScatterMode::Spa),
            false,
        ));
    }
    let pull2 = EngineConfig::new()
        .with_threads(2)
        .with_force_engine(Some(EngineKind::Pull));
    v.push((
        "pull-scalar".into(),
        pull2.with_simd(SimdLevel::Scalar),
        false,
    ));
    v.push((
        "pull-stealing".into(),
        pull2.with_sched_kind(SchedKind::LocalityStealing),
        false,
    ));
    v.push((
        "hybrid-dense-frontier".into(),
        EngineConfig::new()
            .with_threads(2)
            .with_sparse_frontier(false),
        false,
    ));
    v.push((
        "pull-no-frontier-pull".into(),
        pull2.with_frontier_pull(false),
        false,
    ));
    v.push((
        "resilient".into(),
        EngineConfig::new()
            .with_threads(2)
            .with_resilience(no_guard()),
        true,
    ));
    v
}

/// BFS and SSSP fixed points legitimately hold ∞ at unreachable vertices,
/// which the divergence guard would flag — resilient arms run without it.
fn no_guard() -> ResilienceConfig {
    ResilienceConfig {
        divergence_guard: false,
        ..ResilienceConfig::new()
    }
}

/// Runs `prog` under `cfg` through the requested driver; resilient runs
/// must come back clean.
fn drive<P: grazelle::core::GraphProgram>(
    pg: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
    pool: &ThreadPool,
    resilient: bool,
    name: &str,
) {
    if resilient {
        let run = run_resilient_on_pool(pg, prog, cfg, &ResilienceContext::new(), pool)
            .unwrap_or_else(|e| panic!("{name}: resilient run failed: {e:?}"));
        assert_eq!(run.outcome, RunOutcome::Clean, "{name}");
    } else {
        run_program_on_pool(pg, prog, cfg, pool);
    }
}

fn check_all_arms(g: &Graph, root: u32) {
    let gw = weighted_copy(g);
    let n = g.num_vertices();
    let pg = PreparedGraph::new(g);
    let pgw = PreparedGraph::new(&gw);

    let want_cc = cc::reference_undirected(g);
    let want_bfs = bfs::reference_depths(g, root);
    let want_sssp = sssp::reference(&gw, root);
    let want_pr = pagerank::reference(g, pagerank::DAMPING, PR_ITERS);
    let want_kcore = kcore::reference(g);
    let want_lp = labelprop::reference(g);
    let want_tc = triangle::reference(g);

    for (name, cfg, resilient) in arms() {
        let pool = ThreadPool::single_group(cfg.threads);

        let prog = ConnectedComponents::new(n);
        drive(&pg, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(prog.labels(), want_cc, "{name}: CC labels");

        let prog = Bfs::new(n, root);
        drive(&pg, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(
            bfs::validate_parents(g, root, &prog.parents()),
            want_bfs,
            "{name}: BFS depths"
        );

        let prog = Sssp::new(n, root);
        drive(&pgw, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(prog.distances(), want_sssp, "{name}: SSSP distances");

        let prog = PageRank::new(g, pagerank::DAMPING);
        let mut c = cfg;
        c.max_iterations = PR_ITERS;
        drive(&pg, &prog, &c, &pool, resilient, &name);
        let ranks = prog.ranks();
        assert_eq!(ranks.len(), want_pr.len());
        for (v, (a, b)) in ranks.iter().zip(&want_pr).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{name}: PageRank vertex {v}: {a} vs {b}"
            );
        }

        let prog = KCore::new(g);
        let mut c = cfg;
        // Peeling: one iteration per round plus one per threshold bump.
        c.max_iterations = 2 * n + 64;
        drive(&pg, &prog, &c, &pool, resilient, &name);
        assert_eq!(prog.coreness(), want_kcore, "{name}: coreness");

        let prog = LabelProp::new(g);
        drive(&pg, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(prog.labels(), want_lp, "{name}: LP labels");

        // Triangle counting is a single-superstep kernel computation, not
        // a GraphProgram: route it through the matching driver directly.
        let got_tc = if resilient {
            triangle::counts_resilient(g, &pg, &cfg, &ResilienceContext::new(), &pool)
                .unwrap_or_else(|e| panic!("{name}: triangle resilient run: {e:?}"))
        } else {
            triangle::counts_prepared(g, &pg, &cfg, &pool)
        };
        assert_eq!(got_tc, want_tc, "{name}: triangles");
    }
}

/// Seeded symmetric insert pairs absent from `g` — update-stream fodder.
fn fresh_sym_edges(g: &Graph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let n = g.num_vertices() as u32;
    let mut out = Vec::new();
    let mut x = seed | 1;
    let mut tries = 0;
    while out.len() < 2 * count && tries < 50_000 {
        tries += 1;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (x >> 33) as u32 % n;
        let v = (x >> 11) as u32 % n;
        if u == v || g.out_neighbors(u).contains(&v) || out.contains(&(u, v)) {
            continue;
        }
        out.push((u, v));
        out.push((v, u));
    }
    out
}

/// Seeded symmetric delete pairs present in `g` (both directions).
fn existing_sym_edges(g: &Graph, count: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    'outer: for u in 0..g.num_vertices() as u32 {
        for &v in g.out_neighbors(u) {
            if v > u {
                out.push((u, v));
                out.push((v, u));
                if out.len() >= 2 * count {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Rebuilds the versioned graph's merged edge set as a plain graph, the
/// substrate for every cold-recompute reference.
fn merged_plain(vg: &VersionedGraph) -> Graph {
    let view = vg.view();
    let mut el = EdgeList::new(view.num_vertices());
    for u in 0..view.num_vertices() as u32 {
        for v in view.out_neighbors(u) {
            el.push(u, v).unwrap();
        }
    }
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: every arm of the configuration matrix reaches the same
    /// fixed point as the sequential references, on every graph family.
    #[test]
    fn prop_every_configuration_agrees_on_the_fixed_point(
        family in 0u8..3,
        seed in 0u64..1_000_000,
        root_pick in 0u32..64,
    ) {
        let g = family_graph(family, seed);
        let root = root_pick % g.num_vertices() as u32;
        check_all_arms(&g, root);
    }

    /// Property: the frontier-aware compacted pull is bit-identical to the
    /// full-array pull on the frontier-driven applications, across thread
    /// counts and both drivers. Min aggregation is order-insensitive, so
    /// "bit-identical" here is exact equality of the full result vectors.
    #[test]
    fn prop_frontier_aware_pull_is_bit_identical(
        family in 0u8..3,
        seed in 0u64..1_000_000,
        root_pick in 0u32..64,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let g = family_graph(family, seed);
        let gw = weighted_copy(&g);
        let n = g.num_vertices();
        let root = root_pick % n as u32;
        let pg = PreparedGraph::new(&g);
        let pgw = PreparedGraph::new(&gw);
        let pool = ThreadPool::single_group(threads);
        let pinned = EngineConfig::new()
            .with_threads(threads)
            .with_force_engine(Some(EngineKind::Pull))
            .with_resilience(no_guard());

        for resilient in [false, true] {
            let mut labels = Vec::new();
            let mut depths = Vec::new();
            let mut dists = Vec::new();
            let mut communities = Vec::new();
            for frontier_pull in [false, true] {
                let cfg = pinned.with_frontier_pull(frontier_pull);
                let name = format!("frontier_pull={frontier_pull}/resilient={resilient}");

                let prog = ConnectedComponents::new(n);
                drive(&pg, &prog, &cfg, &pool, resilient, &name);
                labels.push(prog.labels());

                let prog = Bfs::new(n, root);
                drive(&pg, &prog, &cfg, &pool, resilient, &name);
                depths.push(prog.parents());

                let prog = Sssp::new(n, root);
                drive(&pgw, &prog, &cfg, &pool, resilient, &name);
                dists.push(prog.distances());

                let prog = LabelProp::new(&g);
                drive(&pg, &prog, &cfg, &pool, resilient, &name);
                communities.push(prog.labels());
            }
            prop_assert_eq!(&labels[0], &labels[1], "CC, resilient={}", resilient);
            prop_assert_eq!(&depths[0], &depths[1], "BFS, resilient={}", resilient);
            prop_assert_eq!(&dists[0], &dists[1], "SSSP, resilient={}", resilient);
            prop_assert_eq!(
                &communities[0], &communities[1],
                "LP, resilient={}", resilient
            );
        }

        // Triangle counting's compacted-vs-dense agreement: one Edge phase
        // over the explicit active-vector list vs the full vector space.
        let dense = grazelle_apps::triangle::counts_prepared(&g, &pg, &pinned, &pool);
        let compact = grazelle_apps::triangle::counts_compacted(
            &g,
            &pg,
            &pinned,
            &pool,
            &Frontier::all(n),
        );
        prop_assert_eq!(&dense, &compact, "TC compacted vs dense x{}", threads);
        prop_assert_eq!(dense, grazelle_apps::triangle::reference(&g));
    }

    /// Property: the cost-model direction switch is an optimization, never
    /// a semantic choice — hybrid output is bit-identical to forced-pull
    /// and forced-push under either direction policy, and every recorded
    /// iteration's engine choice is explained by the costs in its trace
    /// record (DESIGN.md §16).
    #[test]
    fn prop_direction_switch_is_output_invariant(
        family in 0u8..3,
        seed in 0u64..1_000_000,
        root_pick in 0u32..64,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        use grazelle::core::config::DirectionPolicy;
        use grazelle::core::direction::ALPHA;

        let g = family_graph(family, seed);
        let n = g.num_vertices();
        let root = root_pick % n as u32;
        let pg = PreparedGraph::new(&g);
        let pool = ThreadPool::single_group(threads);

        let mut outputs: Vec<(Vec<u32>, Vec<Option<u32>>)> = Vec::new();
        let policies = [
            ("cost-model", DirectionPolicy::CostModel, None),
            ("density-gate", DirectionPolicy::DensityGate, None),
            ("forced-pull", DirectionPolicy::CostModel, Some(EngineKind::Pull)),
            ("forced-push", DirectionPolicy::CostModel, Some(EngineKind::Push)),
        ];
        for (pname, policy, force) in policies {
            let cfg = EngineConfig::new()
                .with_threads(threads)
                .with_direction_policy(policy)
                .with_force_engine(force)
                .with_trace(true);

            let prog = ConnectedComponents::new(n);
            let stats = run_program_on_pool(&pg, &prog, &cfg, &pool);
            let labels = prog.labels();

            let bprog = Bfs::new(n, root);
            run_program_on_pool(&pg, &bprog, &cfg, &pool);
            let parents = bprog.parents();

            prop_assert!(!stats.records.is_empty(), "{}: trace empty", pname);
            for (i, rec) in stats.records.iter().enumerate() {
                if let Some(kind) = force {
                    prop_assert_eq!(rec.engine, kind, "{} iter {}", pname, i);
                } else if policy == DirectionPolicy::CostModel {
                    // The recorded costs must explain the recorded choice.
                    let pull_wins =
                        ALPHA.saturating_mul(rec.dir_frontier_edges) >= rec.dir_unvisited_edges;
                    prop_assert_eq!(
                        rec.engine == EngineKind::Pull,
                        pull_wins,
                        "{} iter {}: engine {:?} vs costs {}·{} >= {}",
                        pname, i, rec.engine, ALPHA,
                        rec.dir_frontier_edges, rec.dir_unvisited_edges
                    );
                }
            }
            outputs.push((labels, parents));
        }
        for (i, (labels, parents)) in outputs.iter().enumerate().skip(1) {
            prop_assert_eq!(&outputs[0].0, labels, "CC: {} diverged", policies[i].0);
            prop_assert_eq!(&outputs[0].1, parents, "BFS: {} diverged", policies[i].0);
        }
    }

    /// Property: over an update stream, incrementally-maintained results
    /// stay bit-identical to cold recompute on the merged edge set —
    /// BFS parents and CC labels exactly, PageRank within 1e-9 — across
    /// thread counts and graph families. Two insert-only rounds exercise
    /// the warm frontier-seeded path; a delete-heavy round must force the
    /// full-recompute fallback and still agree after the cold re-run.
    #[test]
    fn prop_update_streams_match_cold_recompute(
        family in 0u8..3,
        seed in 0u64..1_000_000,
        root_pick in 0u32..64,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let g = family_graph(family, seed);
        let n = g.num_vertices();
        let root = root_pick % n as u32;
        let pool = ThreadPool::single_group(threads);
        let mut cfg = EngineConfig::new().with_threads(threads);
        cfg.max_iterations = 500; // let PageRank's tolerance terminate

        let pg = PreparedGraph::new_on_pool(&g, &pool);
        let mut vg = VersionedGraph::new(Arc::new(g), Arc::new(pg));
        let mut ibfs = IncrementalBfs::cold(&vg.view(), root, &cfg, &pool);
        let mut icc = IncrementalCc::cold(&vg.view(), &cfg, &pool);
        let mut ipr =
            IncrementalPageRank::cold(&vg.view(), pagerank::DAMPING, 1e-12, &cfg, &pool);

        for round in 0..2u64 {
            let cur = merged_plain(&vg);
            let fresh = fresh_sym_edges(&cur, 8, seed ^ (round + 1));
            let report = vg
                .apply_batch(&UpdateBatch::from_inserts(&fresh), &pool)
                .unwrap();
            prop_assert!(!report.full_recompute, "insert-only batch stays warm");
            ibfs.update(&vg.view(), &report.record.inserted, &cfg, &pool);
            icc.update(&vg.view(), &report.record.inserted, &cfg, &pool);
            ipr.update(&vg.view(), &cfg, &pool);

            let merged = merged_plain(&vg);
            let mpg = PreparedGraph::new_on_pool(&merged, &pool);
            let (cold_parents, _) = bfs::run_prepared(&mpg, &cfg, &pool, root);
            prop_assert_eq!(
                ibfs.parents(), &cold_parents[..],
                "BFS x{} round {}", threads, round
            );
            let (cold_labels, _) = cc::run_prepared(&mpg, &cfg, &pool, false);
            prop_assert_eq!(
                icc.labels(), &cold_labels[..],
                "CC x{} round {}", threads, round
            );
            let mvg = VersionedGraph::new(Arc::new(merged), Arc::new(mpg));
            let cold_pr =
                IncrementalPageRank::cold(&mvg.view(), pagerank::DAMPING, 1e-12, &cfg, &pool);
            for (v, (a, b)) in ipr.ranks().iter().zip(cold_pr.ranks()).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-9,
                    "PR x{} round {} vertex {}: {} vs {}", threads, round, v, a, b
                );
            }
        }

        // Delete-heavy batch: tombstones cannot be overlaid, so the handle
        // must merge immediately and demand a full recompute.
        let doomed = existing_sym_edges(vg.base(), 6);
        prop_assert!(!doomed.is_empty());
        let mut batch = UpdateBatch::new();
        for &(u, v) in &doomed {
            batch.delete(u, v);
        }
        let report = vg.apply_batch(&batch, &pool).unwrap();
        prop_assert!(report.full_recompute, "deletions force the fallback");
        prop_assert!(report.merged, "deletions merge immediately");
        prop_assert!(!vg.delta_active(), "no overlay survives a merge");

        ibfs = IncrementalBfs::cold(&vg.view(), root, &cfg, &pool);
        icc = IncrementalCc::cold(&vg.view(), &cfg, &pool);
        ipr = IncrementalPageRank::cold(&vg.view(), pagerank::DAMPING, 1e-12, &cfg, &pool);
        let merged = merged_plain(&vg);
        let mpg = PreparedGraph::new_on_pool(&merged, &pool);
        let (cold_parents, _) = bfs::run_prepared(&mpg, &cfg, &pool, root);
        prop_assert_eq!(ibfs.parents(), &cold_parents[..], "BFS after deletes");
        let (cold_labels, _) = cc::run_prepared(&mpg, &cfg, &pool, false);
        prop_assert_eq!(icc.labels(), &cold_labels[..], "CC after deletes");
        prop_assert_eq!(
            icc.labels(),
            &cc::reference_undirected(&merged)[..],
            "CC vs sequential reference after deletes"
        );
        let mvg = VersionedGraph::new(Arc::new(merged), Arc::new(mpg));
        let cold_pr =
            IncrementalPageRank::cold(&mvg.view(), pagerank::DAMPING, 1e-12, &cfg, &pool);
        for (v, (a, b)) in ipr.ranks().iter().zip(cold_pr.ranks()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-9,
                "PR after deletes vertex {}: {} vs {}", v, a, b
            );
        }
    }
}

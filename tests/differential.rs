//! Differential fixed-point suite (DESIGN.md §8): every execution
//! configuration — push vs pull (scalar and SIMD), hybrid selection, the
//! resilient driver, both chunk schedulers, sparse and dense frontier
//! representations, and the frontier-aware compacted pull — must agree on
//! the fixed point of every application, on random graphs drawn from three
//! structurally different families (R-MAT skew, partial mesh, Erdős–Rényi).
//!
//! PageRank is compared within 1e-9 (summation order legitimately differs
//! between engines); CC, BFS, and SSSP fixed points are compared exactly —
//! their Min aggregation is order-insensitive, so any difference is a bug.
//!
//! Replay: the vendored proptest has no shrinking. A failure prints its
//! case number; rerunning the test deterministically regenerates the same
//! inputs for that case (`proptest::case_rng(test_name, case)`), which is
//! this suite's substitute for a shrunken minimal example.

use grazelle::core::config::{EngineConfig, ResilienceConfig, SchedKind};
use grazelle::core::engine::hybrid::{run_program_on_pool, EngineKind};
use grazelle::core::engine::PreparedGraph;
use grazelle::core::{run_resilient_on_pool, ResilienceContext, RunOutcome};
use grazelle::graph::edgelist::EdgeList;
use grazelle::graph::gen::{erdos_renyi, grid_mesh, rmat, RmatConfig};
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, pagerank, sssp, Bfs, ConnectedComponents, PageRank, Sssp};
use grazelle_sched::pool::ThreadPool;
use grazelle_vsparse::simd::SimdLevel;
use proptest::prelude::*;

const PR_ITERS: usize = 20;

/// One random graph per (family, seed): symmetrized so CC's undirected
/// reference applies and BFS/SSSP reach non-trivial fractions.
fn family_graph(family: u8, seed: u64) -> Graph {
    let mut el = match family % 3 {
        0 => rmat(&RmatConfig::graph500(6, 4.0, seed)),
        1 => grid_mesh(9, 9, 0.85, seed),
        _ => erdos_renyi(96, 320, seed, true),
    };
    el.symmetrize();
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

/// The same structure with deterministic per-direction weights. Weights
/// are exact binary fractions so min-plus sums carry no rounding and the
/// SSSP comparison can be exact.
fn weighted_copy(g: &Graph) -> Graph {
    let mut el = EdgeList::new(g.num_vertices());
    for v in 0..g.num_vertices() as u32 {
        for &d in g.out_neighbors(v) {
            let w = ((v as u64 * 31 + d as u64) % 16 + 1) as f64 / 4.0;
            el.push_weighted(v, d, w).unwrap();
        }
    }
    Graph::from_edgelist(&el).unwrap()
}

/// The configuration matrix: engine pin × thread count, plus one arm each
/// for scalar SIMD, the locality-stealing scheduler, the dense-only
/// frontier representation, and disabled frontier-aware pull. The
/// resilient driver is flagged so the runner routes through it.
fn arms() -> Vec<(String, EngineConfig, bool)> {
    let mut v = Vec::new();
    for threads in [1usize, 2, 8] {
        for kind in [Some(EngineKind::Pull), Some(EngineKind::Push), None] {
            let name = match kind {
                Some(k) => format!("{k:?}x{threads}"),
                None => format!("hybrid-x{threads}"),
            };
            v.push((
                name,
                EngineConfig::new()
                    .with_threads(threads)
                    .with_force_engine(kind),
                false,
            ));
        }
    }
    let pull2 = EngineConfig::new()
        .with_threads(2)
        .with_force_engine(Some(EngineKind::Pull));
    v.push((
        "pull-scalar".into(),
        pull2.with_simd(SimdLevel::Scalar),
        false,
    ));
    v.push((
        "pull-stealing".into(),
        pull2.with_sched_kind(SchedKind::LocalityStealing),
        false,
    ));
    v.push((
        "hybrid-dense-frontier".into(),
        EngineConfig::new()
            .with_threads(2)
            .with_sparse_frontier(false),
        false,
    ));
    v.push((
        "pull-no-frontier-pull".into(),
        pull2.with_frontier_pull(false),
        false,
    ));
    v.push((
        "resilient".into(),
        EngineConfig::new()
            .with_threads(2)
            .with_resilience(no_guard()),
        true,
    ));
    v
}

/// BFS and SSSP fixed points legitimately hold ∞ at unreachable vertices,
/// which the divergence guard would flag — resilient arms run without it.
fn no_guard() -> ResilienceConfig {
    ResilienceConfig {
        divergence_guard: false,
        ..ResilienceConfig::new()
    }
}

/// Runs `prog` under `cfg` through the requested driver; resilient runs
/// must come back clean.
fn drive<P: grazelle::core::GraphProgram>(
    pg: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
    pool: &ThreadPool,
    resilient: bool,
    name: &str,
) {
    if resilient {
        let run = run_resilient_on_pool(pg, prog, cfg, &ResilienceContext::new(), pool)
            .unwrap_or_else(|e| panic!("{name}: resilient run failed: {e:?}"));
        assert_eq!(run.outcome, RunOutcome::Clean, "{name}");
    } else {
        run_program_on_pool(pg, prog, cfg, pool);
    }
}

fn check_all_arms(g: &Graph, root: u32) {
    let gw = weighted_copy(g);
    let n = g.num_vertices();
    let pg = PreparedGraph::new(g);
    let pgw = PreparedGraph::new(&gw);

    let want_cc = cc::reference_undirected(g);
    let want_bfs = bfs::reference_depths(g, root);
    let want_sssp = sssp::reference(&gw, root);
    let want_pr = pagerank::reference(g, pagerank::DAMPING, PR_ITERS);

    for (name, cfg, resilient) in arms() {
        let pool = ThreadPool::single_group(cfg.threads);

        let prog = ConnectedComponents::new(n);
        drive(&pg, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(prog.labels(), want_cc, "{name}: CC labels");

        let prog = Bfs::new(n, root);
        drive(&pg, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(
            bfs::validate_parents(g, root, &prog.parents()),
            want_bfs,
            "{name}: BFS depths"
        );

        let prog = Sssp::new(n, root);
        drive(&pgw, &prog, &cfg, &pool, resilient, &name);
        assert_eq!(prog.distances(), want_sssp, "{name}: SSSP distances");

        let prog = PageRank::new(g, pagerank::DAMPING);
        let mut c = cfg;
        c.max_iterations = PR_ITERS;
        drive(&pg, &prog, &c, &pool, resilient, &name);
        let ranks = prog.ranks();
        assert_eq!(ranks.len(), want_pr.len());
        for (v, (a, b)) in ranks.iter().zip(&want_pr).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{name}: PageRank vertex {v}: {a} vs {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: every arm of the configuration matrix reaches the same
    /// fixed point as the sequential references, on every graph family.
    #[test]
    fn prop_every_configuration_agrees_on_the_fixed_point(
        family in 0u8..3,
        seed in 0u64..1_000_000,
        root_pick in 0u32..64,
    ) {
        let g = family_graph(family, seed);
        let root = root_pick % g.num_vertices() as u32;
        check_all_arms(&g, root);
    }

    /// Property: the frontier-aware compacted pull is bit-identical to the
    /// full-array pull on the frontier-driven applications, across thread
    /// counts and both drivers. Min aggregation is order-insensitive, so
    /// "bit-identical" here is exact equality of the full result vectors.
    #[test]
    fn prop_frontier_aware_pull_is_bit_identical(
        family in 0u8..3,
        seed in 0u64..1_000_000,
        root_pick in 0u32..64,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let g = family_graph(family, seed);
        let gw = weighted_copy(&g);
        let n = g.num_vertices();
        let root = root_pick % n as u32;
        let pg = PreparedGraph::new(&g);
        let pgw = PreparedGraph::new(&gw);
        let pool = ThreadPool::single_group(threads);
        let pinned = EngineConfig::new()
            .with_threads(threads)
            .with_force_engine(Some(EngineKind::Pull))
            .with_resilience(no_guard());

        for resilient in [false, true] {
            let mut labels = Vec::new();
            let mut depths = Vec::new();
            let mut dists = Vec::new();
            for frontier_pull in [false, true] {
                let cfg = pinned.with_frontier_pull(frontier_pull);
                let name = format!("frontier_pull={frontier_pull}/resilient={resilient}");

                let prog = ConnectedComponents::new(n);
                drive(&pg, &prog, &cfg, &pool, resilient, &name);
                labels.push(prog.labels());

                let prog = Bfs::new(n, root);
                drive(&pg, &prog, &cfg, &pool, resilient, &name);
                depths.push(prog.parents());

                let prog = Sssp::new(n, root);
                drive(&pgw, &prog, &cfg, &pool, resilient, &name);
                dists.push(prog.distances());
            }
            prop_assert_eq!(&labels[0], &labels[1], "CC, resilient={}", resilient);
            prop_assert_eq!(&depths[0], &depths[1], "BFS, resilient={}", resilient);
            prop_assert_eq!(&dists[0], &dists[1], "SSSP, resilient={}", resilient);
        }
    }
}

//! Cross-engine consistency: every engine pattern (Grazelle pull, Grazelle
//! push, Ligra, Ligra-Dense, Polymer, GraphMat, X-Stream) must produce the
//! same application results on the same inputs, including under
//! property-based random graphs.

use grazelle::core::config::EngineConfig;
use grazelle::core::engine::hybrid::{run_program_on_pool, EngineKind};
use grazelle::core::engine::PreparedGraph;
use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle_apps::{bfs, cc, pagerank, Bfs, ConnectedComponents, PageRank};
use grazelle_baselines::{GraphMatEngine, LigraConfig, LigraEngine, PolymerEngine, XStreamEngine};
use grazelle_sched::pool::ThreadPool;
use proptest::prelude::*;

fn symmetric_graph_from(pairs: &[(u32, u32)], n: usize) -> Graph {
    let mut el = EdgeList::from_pairs(n, pairs).unwrap();
    el.symmetrize();
    el.sort_and_dedup();
    Graph::from_edgelist(&el).unwrap()
}

/// Runs PageRank on every engine pattern and returns the rank vectors.
fn pagerank_everywhere(g: &Graph, iters: usize) -> Vec<(String, Vec<f64>)> {
    let pool = ThreadPool::single_group(2);
    let pg = PreparedGraph::new(g);
    let mut out = Vec::new();

    for kind in [EngineKind::Pull, EngineKind::Push] {
        let cfg = EngineConfig::new()
            .with_threads(2)
            .with_force_engine(Some(kind))
            .with_max_iterations(iters);
        let prog = PageRank::new(g, pagerank::DAMPING);
        run_program_on_pool(&pg, &prog, &cfg, &pool);
        out.push((format!("grazelle-{kind:?}"), prog.ranks()));
    }

    let ligra = LigraEngine::new(g);
    for (name, lcfg) in [
        ("ligra", LigraConfig::standard()),
        ("ligra-dense", LigraConfig::dense()),
        ("ligra-push", LigraConfig::push_p()),
    ] {
        let prog = PageRank::new(g, pagerank::DAMPING);
        ligra.run(g, &prog, &pool, &lcfg, iters);
        out.push((name.to_string(), prog.ranks()));
    }

    {
        let polymer = PolymerEngine::new(g, 1);
        let prog = PageRank::new(g, pagerank::DAMPING);
        polymer.run(g, &prog, &pool, iters);
        out.push(("polymer".into(), prog.ranks()));
    }
    {
        let prog = PageRank::new(g, pagerank::DAMPING);
        GraphMatEngine::new().run(g, &prog, &pool, iters);
        out.push(("graphmat".into(), prog.ranks()));
    }
    {
        let xs = XStreamEngine::with_partition_size(g, 64);
        let prog = PageRank::new(g, pagerank::DAMPING);
        xs.run(&prog, &pool, iters);
        out.push(("xstream".into(), prog.ranks()));
    }
    out
}

#[test]
fn pagerank_identical_across_all_engines() {
    let g = Dataset::LiveJournal.build_scaled(-6);
    let runs = pagerank_everywhere(&g, 5);
    let want = pagerank::reference(&g, pagerank::DAMPING, 5);
    for (name, ranks) in &runs {
        assert_eq!(ranks.len(), want.len());
        for (v, (a, b)) in ranks.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "{name} vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn cc_identical_across_all_engines() {
    let g = {
        let base = Dataset::CitPatents.build_scaled(-6);
        let pairs: Vec<(u32, u32)> = (0..base.num_vertices() as u32)
            .flat_map(|v| base.out_neighbors(v).iter().map(move |&d| (v, d)))
            .collect();
        symmetric_graph_from(&pairs, base.num_vertices())
    };
    let want = cc::reference_undirected(&g);
    let pool = ThreadPool::single_group(2);
    let pg = PreparedGraph::new(&g);

    let cfg = EngineConfig::new().with_threads(2);
    let prog = ConnectedComponents::new(g.num_vertices());
    run_program_on_pool(&pg, &prog, &cfg, &pool);
    assert_eq!(prog.labels(), want, "grazelle");

    let ligra = LigraEngine::new(&g);
    for (name, lcfg) in [
        ("ligra", LigraConfig::standard()),
        ("ligra-dense", LigraConfig::dense()),
    ] {
        let prog = ConnectedComponents::new(g.num_vertices());
        ligra.run(&g, &prog, &pool, &lcfg, 10_000);
        assert_eq!(prog.labels(), want, "{name}");
    }
    let prog = ConnectedComponents::new(g.num_vertices());
    PolymerEngine::new(&g, 1).run(&g, &prog, &pool, 10_000);
    assert_eq!(prog.labels(), want, "polymer");
    let prog = ConnectedComponents::new(g.num_vertices());
    GraphMatEngine::new().run(&g, &prog, &pool, 10_000);
    assert_eq!(prog.labels(), want, "graphmat");
    let prog = ConnectedComponents::new(g.num_vertices());
    XStreamEngine::with_partition_size(&g, 128).run(&prog, &pool, 10_000);
    assert_eq!(prog.labels(), want, "xstream");
}

#[test]
fn bfs_depths_identical_across_all_engines() {
    let g = {
        let base = Dataset::Twitter2010.build_scaled(-7);
        let pairs: Vec<(u32, u32)> = (0..base.num_vertices() as u32)
            .flat_map(|v| base.out_neighbors(v).iter().map(move |&d| (v, d)))
            .collect();
        symmetric_graph_from(&pairs, base.num_vertices())
    };
    let want = bfs::reference_depths(&g, 0);
    let pool = ThreadPool::single_group(2);
    let pg = PreparedGraph::new(&g);

    let cfg = EngineConfig::new().with_threads(2);
    let prog = Bfs::new(g.num_vertices(), 0);
    run_program_on_pool(&pg, &prog, &cfg, &pool);
    assert_eq!(
        bfs::validate_parents(&g, 0, &prog.parents()),
        want,
        "grazelle"
    );

    let ligra = LigraEngine::new(&g);
    for (name, lcfg) in [
        ("ligra", LigraConfig::standard()),
        ("ligra-dense", LigraConfig::dense()),
    ] {
        let prog = Bfs::new(g.num_vertices(), 0);
        ligra.run(&g, &prog, &pool, &lcfg, 10_000);
        assert_eq!(
            bfs::validate_parents(&g, 0, &prog.parents()),
            want,
            "{name}"
        );
    }
    let prog = Bfs::new(g.num_vertices(), 0);
    GraphMatEngine::new().run(&g, &prog, &pool, 10_000);
    assert_eq!(
        bfs::validate_parents(&g, 0, &prog.parents()),
        want,
        "graphmat"
    );
    let prog = Bfs::new(g.num_vertices(), 0);
    XStreamEngine::with_partition_size(&g, 100).run(&prog, &pool, 10_000);
    assert_eq!(
        bfs::validate_parents(&g, 0, &prog.parents()),
        want,
        "xstream"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: on arbitrary random graphs, Grazelle's pull and push
    /// engines agree with each other and with the sequential references.
    #[test]
    fn prop_engines_agree_on_random_graphs(
        pairs in proptest::collection::vec((0u32..48, 0u32..48), 1..300),
        root in 0u32..48,
    ) {
        let g = symmetric_graph_from(&pairs, 48);
        let pg = PreparedGraph::new(&g);
        let pool = ThreadPool::single_group(2);

        // CC via both pinned engines.
        let mut labels = Vec::new();
        for kind in [EngineKind::Pull, EngineKind::Push] {
            let cfg = EngineConfig::new()
                .with_threads(2)
                .with_force_engine(Some(kind));
            let prog = ConnectedComponents::new(48);
            run_program_on_pool(&pg, &prog, &cfg, &pool);
            labels.push(prog.labels());
        }
        prop_assert_eq!(&labels[0], &labels[1]);
        prop_assert_eq!(&labels[0], &cc::reference_undirected(&g));

        // BFS depths via both pinned engines.
        let mut depths = Vec::new();
        for kind in [EngineKind::Pull, EngineKind::Push] {
            let cfg = EngineConfig::new()
                .with_threads(2)
                .with_force_engine(Some(kind));
            let prog = Bfs::new(48, root);
            run_program_on_pool(&pg, &prog, &cfg, &pool);
            depths.push(bfs::validate_parents(&g, root, &prog.parents()));
        }
        prop_assert_eq!(&depths[0], &depths[1]);
        prop_assert_eq!(&depths[0], &bfs::reference_depths(&g, root));
    }
}

//! Road-network analysis — the mesh workload class (dimacs-usa).
//!
//! Finds the connected components of a partial road mesh, then runs a BFS
//! from the largest component's minimum vertex and reports reachability by
//! hop distance. Demonstrates the hybrid driver switching engines as the
//! frontier evolves.
//!
//! ```sh
//! cargo run --release --example road_components
//! ```

use grazelle::core::engine::hybrid::{run_program_on_pool, EngineKind};
use grazelle::core::engine::PreparedGraph;
use grazelle::prelude::*;
use grazelle_apps::bfs::Bfs;
use grazelle_apps::cc::ConnectedComponents;
use grazelle_sched::pool::ThreadPool;
use std::collections::HashMap;

fn main() {
    // The mesh generator emits both directions of every kept road segment,
    // so components are well-defined without extra symmetrization.
    let graph = Dataset::DimacsUsa.build_scaled(0);
    println!(
        "road mesh: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let prepared = PreparedGraph::new(&graph);
    let pool = ThreadPool::single_group(4);
    let cfg = EngineConfig::default().with_threads(4);

    // Connected components.
    let cc = ConnectedComponents::new(graph.num_vertices());
    let stats = run_program_on_pool(&prepared, &cc, &cfg, &pool);
    let labels = cc.labels();
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0) += 1;
    }
    let mut by_size: Vec<(u32, usize)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!(
        "components: {} total; largest {} vertices ({:.1}% of map); converged in {} iterations ({} pull / {} push)",
        by_size.len(),
        by_size[0].1,
        100.0 * by_size[0].1 as f64 / labels.len() as f64,
        stats.iterations,
        stats.pull_iterations,
        stats.push_iterations,
    );

    // BFS over the largest component, from its minimum-id intersection.
    let root = by_size[0].0;
    let bfs = Bfs::new(graph.num_vertices(), root);
    let stats = run_program_on_pool(&prepared, &bfs, &cfg, &pool);
    let parents = bfs.parents();
    println!(
        "BFS from v{root}: visited {} vertices in {} levels",
        bfs.visited_count(),
        stats.iterations
    );
    let switches = stats
        .engine_trace
        .windows(2)
        .filter(|w| w[0] != w[1])
        .count();
    let pushes = stats
        .engine_trace
        .iter()
        .filter(|&&k| k == EngineKind::Push)
        .count();
    println!(
        "engine trace: {pushes} push / {} pull levels, {switches} direction switches",
        stats.engine_trace.len() - pushes
    );

    // Sanity: visited set equals the root's component.
    let component_size = by_size[0].1;
    assert_eq!(bfs.visited_count(), component_size);
    let reachable = parents.iter().filter(|p| p.is_some()).count();
    assert_eq!(reachable, component_size);
    println!("check: BFS visited set equals the component ({component_size} vertices)");
}

//! Weighted shortest-path routing with SSSP — the paper's described
//! extension application, exercising edge weights (the appended weight
//! vectors of Vector-Sparse) and the min-plus gather kernel.
//!
//! ```sh
//! cargo run --release --example weighted_routing
//! ```

use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle_apps::sssp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds a weighted grid "city": lattice roads with congestion-dependent
/// travel times, plus a few fast diagonal "highways".
fn build_city(side: usize, seed: u64) -> Graph {
    let n = side * side;
    let mut el = EdgeList::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (y * side + x) as u32;
    for y in 0..side {
        for x in 0..side {
            let mut road = |a: u32, b: u32| {
                let travel = 1.0 + 4.0 * rng.random::<f64>(); // 1–5 minutes
                el.push_weighted(a, b, travel).unwrap();
                el.push_weighted(b, a, travel).unwrap();
            };
            if x + 1 < side {
                road(id(x, y), id(x + 1, y));
            }
            if y + 1 < side {
                road(id(x, y), id(x, y + 1));
            }
        }
    }
    // Highways: long skips at low cost.
    for _ in 0..side {
        let a = rng.random_range(0..n) as u32;
        let b = rng.random_range(0..n) as u32;
        if a != b {
            el.push_weighted(a, b, 2.0).unwrap();
            el.push_weighted(b, a, 2.0).unwrap();
        }
    }
    Graph::from_edgelist(&el).unwrap().with_name("city-grid")
}

fn main() {
    let side = 120;
    let graph = build_city(side, 7);
    println!(
        "city: {} intersections, {} road segments (weighted)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cfg = EngineConfig::default().with_threads(4);
    let depot = 0u32;
    let dist = sssp::run(&graph, &cfg, depot);

    let reachable = dist.iter().filter(|d| d.is_some()).count();
    let max = dist
        .iter()
        .flatten()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let avg: f64 = dist.iter().flatten().sum::<f64>() / reachable as f64;
    println!(
        "from depot v{depot}: {reachable} reachable, avg travel {avg:.1} min, worst {max:.1} min"
    );

    // Spot-check against Dijkstra.
    let want = sssp::reference(&graph, depot);
    for (v, (a, b)) in dist.iter().zip(&want).enumerate() {
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "v{v}"),
            (None, None) => {}
            _ => panic!("v{v}: engine {a:?} vs dijkstra {b:?}"),
        }
    }
    println!("check: all distances match a sequential Dijkstra");

    // Farthest intersection: print its travel time.
    let far = dist
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|d| (v, d)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!("farthest intersection v{} at {:.1} min", far.0, far.1);
}

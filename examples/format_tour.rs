//! A guided tour of the Vector-Sparse format (paper §4, Figures 2 and 4).
//!
//! Walks one small graph from Compressed-Sparse through the 4-lane and
//! 8-lane Vector-Sparse encodings, showing lane contents, padding,
//! top-level-vertex reassembly, packing efficiency, and a masked gather —
//! everything the format does, on data small enough to read.
//!
//! ```sh
//! cargo run --release --example format_tour
//! ```

use grazelle::graph::edgelist::EdgeList;
use grazelle::prelude::*;
use grazelle::vsparse::format::{lane_is_valid, lane_vertex, TLV_SHIFT};
use grazelle::vsparse::packing::{packing_efficiency, space_overhead};
use grazelle::vsparse::simd::{detect, Kernels};
use grazelle::vsparse::VectorSparse;

fn main() {
    // The paper's worked example: a top-level vertex with degree 7 occupies
    // two 256-bit vectors (7 valid lanes + 1 invalid).
    let mut el = EdgeList::new(10);
    for d in 1..=7u32 {
        el.push(0, d).unwrap(); // vertex 0: degree 7
    }
    el.push(2, 9).unwrap(); // vertex 2: degree 1
    el.push(2, 4).unwrap(); // vertex 2: degree 2
    let g = Graph::from_edgelist(&el).unwrap();

    println!("== Compressed-Sparse (Figure 2) ==");
    let csr = g.out_csr();
    println!("vertex index: {:?}", csr.index());
    println!("edge array:   {:?}", csr.edges());

    println!("\n== Vector-Sparse, 4 lanes (Figure 4) ==");
    let vsd = VectorSparse::<4>::from_csr(csr);
    println!(
        "{} edges -> {} vectors ({} lanes, {} padding)",
        vsd.num_edges(),
        vsd.num_vectors(),
        vsd.num_vectors() * 4,
        vsd.num_vectors() * 4 - vsd.num_edges()
    );
    for (i, ev) in vsd.vectors().iter().enumerate() {
        print!(
            "vector {i}: top-level vertex {} | lanes:",
            ev.top_level_vertex()
        );
        for (lane_idx, &lane) in ev.lanes().iter().enumerate() {
            let valid = lane_is_valid(lane);
            let piece = (lane >> TLV_SHIFT) & 0xFFF;
            print!(
                " [{}{} tlv-piece={:#05x} v={}]",
                lane_idx,
                if valid { "+" } else { "-" },
                piece,
                lane_vertex(lane)
            );
        }
        println!();
    }
    println!(
        "packing efficiency {:.1}% (space overhead {:.2}x vs Compressed-Sparse edges)",
        100.0 * vsd.packing_efficiency(),
        space_overhead(&csr.degrees(), 4)
    );

    println!("\n== The same edges at 8 lanes (AVX-512 width) ==");
    let vsd8 = VectorSparse::<8>::from_csr(csr);
    println!(
        "{} vectors, packing {:.1}% — wider lanes pay more padding on low degrees",
        vsd8.num_vectors(),
        100.0 * packing_efficiency(&csr.degrees(), 8),
    );

    println!("\n== Masked gather (Listing 7's inner step) ==");
    // Gather 'ranks' of vertex 0's out-neighbors, with a frontier that only
    // activates odd vertices.
    let values: Vec<f64> = (0..10).map(|v| v as f64 * 10.0).collect();
    let kernels = Kernels::auto();
    println!("kernels: {:?}", detect());
    let ev = &vsd.vectors()[0]; // vertex 0's first vector: neighbors 1..4
    let frontier_mask = 0b0101; // lanes 0 and 2 (neighbors 1 and 3) active
    let sum = kernels.gather_sum(&values, ev, frontier_mask);
    println!(
        "gather-sum over lanes {{1,3}} of {:?} = {} (10*1 + 10*3)",
        &csr.neighbors(0)[..4],
        sum
    );
    assert_eq!(sum, 40.0);

    // The valid bits predicate the padded tail vector automatically.
    let tail = &vsd.vectors()[1]; // neighbors 5,6,7 + one invalid lane
    let all = kernels.gather_sum(&values, tail, 0b1111);
    println!("gather-sum over the padded tail = {all} (50+60+70, padding ignored)");
    assert_eq!(all, 180.0);
}

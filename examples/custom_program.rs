//! Writing a custom `GraphProgram`: adoption spreading.
//!
//! A vertex "adopts" a product once the number of its in-neighbors that
//! have adopted reaches a threshold — a classic influence-cascade model.
//! The program maps onto the engine's model as:
//!
//! * Edge phase: Sum over active in-neighbors of an indicator value
//!   (`edge_values[v] = 1.0` once v adopts),
//! * Vertex phase: adopt when the running exposure counter crosses the
//!   threshold; adopters join the frontier once and then converge.
//!
//! The paper's point about application burden (§3) shows up here: the only
//! scheduler-awareness obligation on this code is that `AggOp::Sum` defines
//! the aggregation identity — everything else (chunking, merge buffers,
//! vectorized gathers, engine switching) is the framework's job.
//!
//! ```sh
//! cargo run --release --example custom_program
//! ```

use grazelle::core::config::EngineConfig;
use grazelle::core::engine::hybrid::run_program_on_pool;
use grazelle::core::engine::PreparedGraph;
use grazelle::core::frontier::{DenseBitmap, Frontier};
use grazelle::core::program::{AggOp, GraphProgram};
use grazelle::core::properties::PropertyArray;
use grazelle::prelude::*;
use grazelle_sched::pool::ThreadPool;

struct AdoptionCascade {
    n: usize,
    threshold: f64,
    /// 1.0 for adopters — the value summed along in-edges.
    adopted_val: PropertyArray,
    /// Cumulative exposure per vertex (carried across iterations).
    exposure: PropertyArray,
    /// Per-iteration new exposure (the engine's accumulator).
    acc: PropertyArray,
    /// Adopters (converged: they ignore further messages).
    adopters: DenseBitmap,
    seeds: Vec<u32>,
}

impl AdoptionCascade {
    fn new(n: usize, seeds: &[u32], threshold: f64) -> Self {
        let adopted_val = PropertyArray::new(n);
        let adopters = DenseBitmap::new(n);
        for &s in seeds {
            adopted_val.set_f64(s as usize, 1.0);
            adopters.insert(s);
        }
        AdoptionCascade {
            n,
            threshold,
            adopted_val,
            exposure: PropertyArray::new(n),
            acc: PropertyArray::new(n),
            adopters,
            seeds: seeds.to_vec(),
        }
    }
}

impl GraphProgram for AdoptionCascade {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn op(&self) -> AggOp {
        AggOp::Sum
    }
    fn edge_values(&self) -> &PropertyArray {
        &self.adopted_val
    }
    fn accumulators(&self) -> &PropertyArray {
        &self.acc
    }
    fn apply(&self, v: u32) -> bool {
        if self.adopters.contains(v) {
            return false;
        }
        let vu = v as usize;
        let total = self.exposure.get_f64(vu) + self.acc.get_f64(vu);
        self.exposure.set_f64(vu, total);
        if total >= self.threshold {
            self.adopters.insert(v);
            self.adopted_val.set_f64(vu, 1.0);
            true // newly adopted: broadcast next iteration
        } else {
            false
        }
    }
    fn uses_frontier(&self) -> bool {
        true
    }
    fn converged(&self) -> Option<&DenseBitmap> {
        Some(&self.adopters)
    }
    fn initial_frontier(&self) -> Frontier {
        Frontier::from_vertices(self.n, &self.seeds)
    }
}

fn main() {
    let graph = Dataset::LiveJournal.build_scaled(-2);
    println!(
        "social graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let prepared = PreparedGraph::new(&graph);
    let pool = ThreadPool::single_group(4);
    let cfg = EngineConfig::default().with_threads(4);

    // Seed the 10 highest-out-degree vertices.
    let mut by_deg: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    by_deg.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let seeds: Vec<u32> = by_deg[..10].to_vec();

    for threshold in [1.0, 2.0, 3.0] {
        let prog = AdoptionCascade::new(graph.num_vertices(), &seeds, threshold);
        let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
        let adopters = prog.adopters.count();
        println!(
            "threshold {threshold}: {adopters} adopters ({:.1}%) after {} rounds ({} pull / {} push)",
            100.0 * adopters as f64 / graph.num_vertices() as f64,
            stats.iterations,
            stats.pull_iterations,
            stats.push_iterations
        );
    }
}

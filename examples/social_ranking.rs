//! Social-network influence ranking — the workload class (twitter-2010)
//! that motivates the paper's pull-engine optimizations.
//!
//! Runs PageRank on the twitter stand-in under all three pull-engine
//! interfaces and prints the per-iteration time plus the write-traffic
//! counters, making the paper's §3 argument observable:
//! the scheduler-aware interface replaces per-vector synchronized updates
//! with (at most) one plain store per destination plus one merge entry per
//! chunk.
//!
//! ```sh
//! cargo run --release --example social_ranking
//! ```

use grazelle::core::config::{EngineConfig, Granularity, PullMode};
use grazelle::core::engine::hybrid::run_program_on_pool;
use grazelle::core::engine::PreparedGraph;
use grazelle::prelude::*;
use grazelle_apps::pagerank::{self, PageRank};
use grazelle_sched::pool::ThreadPool;

fn main() {
    let graph = Dataset::Twitter2010.build_scaled(-3);
    println!(
        "twitter-2010 stand-in: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let prepared = PreparedGraph::new(&graph);
    let pool = ThreadPool::single_group(4);
    const ITERS: usize = 8;

    println!(
        "\n{:<18} {:>12} {:>14} {:>14} {:>14} {:>12}",
        "interface", "ms/iter", "atomic upd", "nonatomic upd", "direct stores", "merge slots"
    );
    for (name, mode) in [
        ("Traditional", PullMode::Traditional),
        ("Trad-Nonatomic", PullMode::TraditionalNoAtomic),
        ("Scheduler-Aware", PullMode::SchedulerAware),
    ] {
        let cfg = EngineConfig::new()
            .with_threads(4)
            .with_pull_mode(mode)
            .with_granularity(Granularity::VectorsPerChunk(1000))
            .with_max_iterations(ITERS);
        let prog = PageRank::new(&graph, pagerank::DAMPING);
        let stats = run_program_on_pool(&prepared, &prog, &cfg, &pool);
        let p = stats.profile;
        println!(
            "{:<18} {:>12.3} {:>14} {:>14} {:>14} {:>12}",
            name,
            stats.wall.as_secs_f64() * 1000.0 / ITERS as f64,
            p.atomic_updates,
            p.nonatomic_updates,
            p.direct_stores,
            p.merge_entries,
        );
        assert!((prog.rank_sum() - 1.0).abs() < 1e-6 || mode == PullMode::TraditionalNoAtomic);
    }
    println!("\n(Trad-Nonatomic is the paper's intentionally racy control arm — its output may be wrong.)");
}

//! Quickstart: build a graph, run PageRank on the hybrid engine, inspect
//! the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grazelle::prelude::*;

fn main() {
    // 1. Get a graph. Here: a seeded scale-free stand-in (~250 vertices);
    //    `EdgeList` + `Graph::from_edgelist` load your own data instead.
    let graph = Dataset::LiveJournal.build_scaled(-6);
    println!(
        "graph: {} — {} vertices, {} edges (avg degree {:.1})",
        graph.name(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // 2. Configure the engine. Defaults give the paper's best setup:
    //    scheduler-aware pull + AVX2 Vector-Sparse when available.
    let config = EngineConfig::default();
    println!(
        "engine: {} threads, pull mode {:?}, simd {:?}",
        config.threads, config.pull_mode, config.simd
    );

    // 3. Run 20 PageRank iterations.
    let ranks = grazelle::apps::pagerank::run(&graph, &config, 20);

    // 4. Results: ranks sum to 1, top vertices are the hubs.
    let total: f64 = ranks.iter().sum();
    println!("rank sum = {total:.9} (should be ~1.0)");
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("top 5 vertices by rank:");
    for &v in idx.iter().take(5) {
        println!(
            "  v{v:<6} rank {:.6}  in-degree {}",
            ranks[v],
            graph.in_degree(v as u32)
        );
    }
}
